//! `bench_serving` — certification and open-loop load benchmark of the
//! serving path (`hongtu-serving`), emitted as machine-readable JSON
//! for CI.
//!
//! For each model × overlap mode × GPU count the same vertex subset is
//! served two ways: through `Session::serve` (one sweep pruned to the
//! subset's ≤ L-hop cone) and through a full `Session::infer_epoch` on
//! an identically seeded fresh session. The report records both
//! simulated times, both logits digests (restricted to the queried
//! rows), and both sim-event counts. One configuration additionally
//! drives an open-loop Poisson workload through the FIFO batching
//! server and records p50/p99 latency, queries/sec, the batch-size
//! histogram, and the admission-reject rate.
//!
//! The process exits 1 if any invariant fails:
//! - served logits digest != full-inference digest on the same rows;
//! - pruned sweep not strictly faster (sim-time) than the full sweep
//!   for a subset of ≤ 10% of the vertices;
//! - pruned sweep not strictly fewer sim events than the full sweep;
//! - any rejection under the session's own staging budget, or a
//!   non-finite latency percentile.
//!
//! ```text
//! cargo run -p hongtu-bench --bin bench_serving -- [--out FILE] \
//!     [--dataset rdt|opt|it|opr|fds] [--gpus N] [--overlap off|db] \
//!     [--qps RATE] [--batch-window N] [--requests N] [--subset N] \
//!     [--seed N]
//! ```
//!
//! Default output is `BENCH_serving.json` in the current directory.
//! `--qps 0` (the default) auto-calibrates the arrival rate to ~2.5
//! arrivals per pruned sweep so batches actually form.

use hongtu_core::cli::{logits_digest, parse_dataset, parse_overlap, FlagParser};
use hongtu_core::{CommMode, HongTuConfig, Mode, OverlapMode, Session};
use hongtu_datasets::{load, DatasetKey};
use hongtu_nn::ModelKind;
use hongtu_serving::{poisson_workload, run_open_loop, AdmissionControl, LoadStats};
use hongtu_sim::MachineConfig;
use hongtu_tensor::SeededRng;

const USAGE: &str = "usage: bench_serving [--out FILE] [--dataset rdt|opt|it|opr|fds] \
     [--gpus N] [--overlap off|doublebuffer] [--qps RATE] [--batch-window N] \
     [--requests N] [--subset N] [--seed N]";

struct Args {
    out: String,
    dataset: DatasetKey,
    gpus: Option<usize>,
    overlap: Option<OverlapMode>,
    qps: f64,
    batch_window: usize,
    requests: usize,
    subset: usize,
    seed: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        out: String::from("BENCH_serving.json"),
        dataset: DatasetKey::Rdt,
        gpus: None,
        overlap: None,
        qps: 0.0,
        batch_window: 4,
        requests: 24,
        subset: 0,
        seed: 99,
    };
    let mut p = FlagParser::from_env();
    while let Some(flag) = p.next_flag() {
        match flag.as_str() {
            "--out" => args.out = p.value("--out")?,
            "--dataset" => args.dataset = p.value_with("--dataset", parse_dataset)?,
            "--gpus" => args.gpus = Some(p.parse_value("--gpus")?),
            "--overlap" => args.overlap = Some(p.value_with("--overlap", parse_overlap)?),
            "--qps" => args.qps = p.parse_value("--qps")?,
            "--batch-window" => args.batch_window = p.parse_value("--batch-window")?,
            "--requests" => args.requests = p.parse_value("--requests")?,
            "--subset" => args.subset = p.parse_value("--subset")?,
            "--seed" => args.seed = p.parse_value("--seed")?,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    Ok(args)
}

struct Sample {
    model: &'static str,
    overlap: &'static str,
    gpus: usize,
    queried: usize,
    serve_sim_s: f64,
    infer_sim_s: f64,
    serve_events: usize,
    infer_events: usize,
    serve_digest: u64,
    infer_digest: u64,
    load: Option<LoadStats>,
}

/// Samples a clustered query subset: `size` vertices drawn from batch
/// 0's destination sets (across GPUs). Clustered queries are the regime
/// where cone pruning pays off — at the top layer only the queried
/// batch runs — and model the locality of real request streams
/// (ego-nets, per-community dashboards). A uniform sample over the
/// whole graph would touch every batch and prune nothing at this chunk
/// granularity.
fn cluster_subset(session: &Session, size: usize, seed: u64) -> Vec<usize> {
    let mut pool: Vec<usize> = session
        .plans()
        .partition
        .all_chunks()
        .filter(|c| c.chunk == 0)
        .flat_map(|c| c.dests.iter().map(|&v| v as usize))
        .collect();
    pool.sort_unstable();
    let picks = SeededRng::new(seed ^ 0x7375_6273).sample_indices(pool.len(), size.min(pool.len()));
    picks.into_iter().map(|k| pool[k]).collect()
}

fn config(gpus: usize, overlap: OverlapMode) -> HongTuConfig {
    HongTuConfig::builder()
        .machine(MachineConfig::scaled(gpus, 512 << 20))
        .comm(CommMode::P2pRu)
        .overlap(overlap)
        .mode(Mode::Infer)
        .build()
        .expect("valid config")
}

fn main() {
    let args = parse_args().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });

    let ds = load(args.dataset, &mut SeededRng::new(args.seed));
    let n = ds.graph.num_vertices();
    // Certification subset: ≤ 10% of the vertices (the regime where the
    // pruned sweep must win), 5% by default.
    let subset = if args.subset > 0 {
        args.subset.min(n)
    } else {
        (n / 20).max(1)
    };
    let gpu_counts: Vec<usize> = match args.gpus {
        Some(g) => vec![g],
        None => vec![1, 2, 4],
    };
    let overlaps: Vec<(OverlapMode, &'static str)> = match args.overlap {
        Some(OverlapMode::Off) => vec![(OverlapMode::Off, "off")],
        Some(OverlapMode::DoubleBuffer) => vec![(OverlapMode::DoubleBuffer, "doublebuffer")],
        None => vec![
            (OverlapMode::Off, "off"),
            (OverlapMode::DoubleBuffer, "doublebuffer"),
        ],
    };

    let mut samples = Vec::new();
    for (kind, model) in [
        (ModelKind::Gcn, "gcn"),
        (ModelKind::Gat, "gat"),
        (ModelKind::Sage, "sage"),
    ] {
        for &(overlap, overlap_name) in &overlaps {
            for &gpus in &gpu_counts {
                // Pruned sweep on a fresh session, trace enabled so the
                // event count is comparable to the full sweep's.
                let mut serve_session = Session::new(&ds, kind, 32, 2, 4, config(gpus, overlap))
                    .expect("session construction");
                let vertices = cluster_subset(&serve_session, subset, args.seed);
                serve_session.machine_mut().enable_unbounded_trace();
                let served = serve_session.serve(&vertices).expect("serve");
                let serve_events = serve_session.machine().trace().len();

                // Full inference epoch on an identically seeded fresh
                // session.
                let mut infer_session = Session::new(&ds, kind, 32, 2, 4, config(gpus, overlap))
                    .expect("session construction");
                infer_session.machine_mut().enable_unbounded_trace();
                let infer = infer_session.infer_epoch().expect("infer epoch");
                let infer_events = infer_session.machine().trace().len();

                // Open-loop load: one representative configuration per
                // (overlap, gpus) cell — GCN — to keep runtime bounded.
                let load = (kind == ModelKind::Gcn).then(|| {
                    let qps = if args.qps > 0.0 {
                        args.qps
                    } else {
                        2.5 / served.time.max(1e-12)
                    };
                    let mut rng = SeededRng::new(args.seed ^ 0x6c6f6164);
                    let workload =
                        poisson_workload(n, args.requests, qps, subset.clamp(1, 8), &mut rng);
                    let mut sess = Session::new(&ds, kind, 32, 2, 4, config(gpus, overlap))
                        .expect("session construction");
                    let admission = AdmissionControl::from_session(&sess);
                    run_open_loop(&mut sess, admission, args.batch_window, workload)
                        .expect("open loop")
                });

                println!(
                    "{model}/{overlap_name}/{gpus} GPUs: serve {:.3} ms vs full {:.3} ms \
                     ({:.0}%), events {} vs {}, digest {:016x}",
                    served.time * 1e3,
                    infer.time * 1e3,
                    100.0 * served.time / infer.time,
                    serve_events,
                    infer_events,
                    logits_digest(&served.logits),
                );
                samples.push(Sample {
                    model,
                    overlap: overlap_name,
                    gpus,
                    queried: vertices.len(),
                    serve_sim_s: served.time,
                    infer_sim_s: infer.time,
                    serve_events,
                    infer_events,
                    serve_digest: logits_digest(&served.logits),
                    infer_digest: logits_digest(&infer.logits.gather_rows(&vertices)),
                    load,
                });
            }
        }
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"dataset\": \"{}\",\n", args.dataset.abbrev()));
    json.push_str(&format!("  \"subset_vertices\": {subset},\n"));
    json.push_str(&format!("  \"num_vertices\": {n},\n"));
    json.push_str(&format!("  \"batch_window\": {},\n", args.batch_window));
    json.push_str(&format!("  \"requests\": {},\n", args.requests));
    json.push_str("  \"samples\": [\n");
    for (i, s) in samples.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"model\": \"{}\", \"overlap\": \"{}\", \"gpus\": {}, \"queried\": {}, \
             \"serve_sim_s\": {:.9}, \"infer_sim_s\": {:.9}, \"speedup\": {:.4}, \
             \"serve_events\": {}, \"infer_events\": {}, \
             \"serve_digest\": \"{:016x}\", \"infer_digest\": \"{:016x}\"",
            s.model,
            s.overlap,
            s.gpus,
            s.queried,
            s.serve_sim_s,
            s.infer_sim_s,
            s.infer_sim_s / s.serve_sim_s,
            s.serve_events,
            s.infer_events,
            s.serve_digest,
            s.infer_digest,
        ));
        if let Some(load) = &s.load {
            let hist: Vec<String> = load
                .batch_hist
                .iter()
                .map(|(size, count)| format!("[{size}, {count}]"))
                .collect();
            json.push_str(&format!(
                ", \"load\": {{\"served\": {}, \"rejected\": {}, \"reject_rate\": {:.4}, \
                 \"p50_latency_s\": {:.9}, \"p99_latency_s\": {:.9}, \
                 \"queries_per_sec\": {:.3}, \"batch_hist\": [{}]}}",
                load.served,
                load.rejected,
                load.reject_rate,
                load.p50_latency,
                load.p99_latency,
                load.queries_per_sec,
                hist.join(", "),
            ));
        }
        json.push_str(&format!(
            "}}{}\n",
            if i + 1 < samples.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&args.out, &json).expect("writing report");
    println!("wrote {}", args.out);

    let mut bad = false;
    for s in &samples {
        if s.serve_digest != s.infer_digest {
            eprintln!(
                "FAIL: {}/{}/{} GPUs: served digest {:016x} != full-inference digest {:016x}",
                s.model, s.overlap, s.gpus, s.serve_digest, s.infer_digest
            );
            bad = true;
        }
        if s.queried * 10 <= n && s.serve_sim_s >= s.infer_sim_s {
            eprintln!(
                "FAIL: {}/{}/{} GPUs: pruned sweep {} s not strictly below full sweep {} s \
                 for a {}/{n}-vertex subset",
                s.model, s.overlap, s.gpus, s.serve_sim_s, s.infer_sim_s, s.queried
            );
            bad = true;
        }
        if s.serve_events >= s.infer_events {
            eprintln!(
                "FAIL: {}/{}/{} GPUs: pruned sweep ran {} sim events, full sweep {}",
                s.model, s.overlap, s.gpus, s.serve_events, s.infer_events
            );
            bad = true;
        }
        if let Some(load) = &s.load {
            if load.rejected != 0 {
                eprintln!(
                    "FAIL: {}/{}/{} GPUs: {} rejections under the session's own staging budget",
                    s.model, s.overlap, s.gpus, load.rejected
                );
                bad = true;
            }
            if !load.p50_latency.is_finite() || !load.p99_latency.is_finite() {
                eprintln!(
                    "FAIL: {}/{}/{} GPUs: non-finite latency percentiles (p50 {}, p99 {})",
                    s.model, s.overlap, s.gpus, load.p50_latency, load.p99_latency
                );
                bad = true;
            }
            if load.served != args.requests {
                eprintln!(
                    "FAIL: {}/{}/{} GPUs: served {} of {} requests",
                    s.model, s.overlap, s.gpus, load.served, args.requests
                );
                bad = true;
            }
        }
    }
    if bad {
        std::process::exit(1);
    }
}
