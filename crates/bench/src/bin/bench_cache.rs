//! `bench_cache` — the hot-vertex cache CI gate, emitted as
//! machine-readable JSON.
//!
//! For each model × comm mode × GPU count the same multi-epoch training
//! workload runs cache-off and cache-on (frequency policy); the report
//! records per-config H2D bytes, nonzero H2D transfer events, the
//! loss/logits digests, the cache hit rate, and the pass-11 verdict. A
//! clustered serving stream then measures the online hit rate. The
//! process exits 1 if any of the gates fire:
//!
//! - losses or logits diverge bitwise between cache-on and cache-off;
//! - a config whose plan admitted rows does not move strictly fewer
//!   H2D bytes over strictly fewer nonzero transfer events;
//! - the reference 4-GPU P2P+RU config admits nothing (the reduction
//!   gates would be vacuous);
//! - the clustered query stream misses the cache entirely;
//! - pass 11 rejects any cache-on journal.
//!
//! ```text
//! cargo run -p hongtu-bench --bin bench_cache -- [--out FILE] \
//!     [--epochs N] [--dataset rdt|opt|it|opr|fds]
//! ```
//!
//! Default output is `BENCH_cache.json` in the current directory.

use hongtu_bench::harness::{
    comm_name, scaled_machine, BenchCli, Gate, JsonReport, JsonRow, COMM_MODES, GPU_COUNTS, MODELS,
};
use hongtu_core::cli::logits_digest;
use hongtu_core::{
    CacheOff, CachePolicy, CommMode, FrequencyRanked, HongTuConfig, HongTuEngine, Session,
};
use hongtu_datasets::Dataset;
use hongtu_nn::ModelKind;
use hongtu_sim::EventKind;
use hongtu_tensor::SeededRng;
use std::sync::Arc;

struct Run {
    bytes_h2d: u64,
    h2d_events: usize,
    losses: Vec<f32>,
    digest: u64,
    hit_rate: f64,
    resident_rows: usize,
    certified: bool,
}

fn run(
    ds: &Dataset,
    kind: ModelKind,
    comm: CommMode,
    gpus: usize,
    policy: Arc<dyn CachePolicy>,
    epochs: usize,
) -> Run {
    let cfg = HongTuConfig::builder()
        .machine(scaled_machine(gpus))
        .comm(comm)
        .reorganize(comm != CommMode::Vanilla)
        .cache(policy)
        .build()
        .expect("valid config");
    let mut engine = HongTuEngine::new(ds, kind, 32, 2, 4, cfg).expect("engine construction");
    engine.machine_mut().enable_unbounded_trace();
    let mut bytes_h2d = 0u64;
    let mut losses = Vec::with_capacity(epochs);
    for _ in 0..epochs {
        let r = engine.train_epoch().expect("epoch");
        bytes_h2d += r.buckets.bytes_h2d;
        losses.push(r.loss.loss);
    }
    let h2d_events = engine
        .machine()
        .trace()
        .events()
        .filter(|e| matches!(e.kind, EventKind::H2D) && e.bytes > 0)
        .count();
    let session = engine.session();
    let report = session.certify_cache();
    Run {
        bytes_h2d,
        h2d_events,
        losses,
        digest: logits_digest(session.logits()),
        hit_rate: session.cache().map_or(0.0, |c| c.hit_rate()),
        resident_rows: session
            .cache()
            .map_or(0, |c| (0..gpus).map(|i| c.resident_rows(i)).sum()),
        certified: report.is_ok(),
    }
}

/// Hit rate of a clustered query stream: repeated vertex-subset serves
/// drawn from one chunk's destinations, the access pattern (ego-nets,
/// per-community dashboards) the cache exists for.
fn clustered_serving_hit_rate(ds: &Dataset) -> f64 {
    let cfg = HongTuConfig::builder()
        .machine(scaled_machine(4))
        .comm(CommMode::P2pRu)
        .cache(Arc::new(FrequencyRanked))
        .infer()
        .build()
        .expect("valid config");
    let mut session = Session::new(ds, ModelKind::Gcn, 32, 2, 4, cfg).expect("session");
    let mut pool: Vec<usize> = session
        .plans()
        .partition
        .all_chunks()
        .filter(|c| c.chunk == 0)
        .flat_map(|c| c.dests.iter().map(|&v| v as usize))
        .collect();
    pool.sort_unstable();
    let mut rng = SeededRng::new(7);
    for _ in 0..6 {
        let queries: Vec<usize> = rng
            .sample_indices(pool.len(), 8.min(pool.len()))
            .into_iter()
            .map(|k| pool[k])
            .collect();
        session.serve(&queries).expect("serve");
    }
    session.cache().map_or(0.0, |c| c.hit_rate())
}

fn main() {
    let cli = BenchCli::parse("bench_cache", "BENCH_cache.json", 2);
    assert!(
        cli.epochs >= 2,
        "--epochs must be >= 2: the cache is cold in epoch 1"
    );
    let ds = hongtu_datasets::load(cli.dataset, &mut SeededRng::new(99));

    let mut report = JsonReport::new()
        .str("dataset", cli.dataset.abbrev())
        .int("epochs", cli.epochs as u64);
    let mut gate = Gate::new();
    let mut reference_admitted = false;
    for (kind, model) in MODELS {
        for comm in COMM_MODES {
            for gpus in GPU_COUNTS {
                let off = run(&ds, kind, comm, gpus, Arc::new(CacheOff), cli.epochs);
                let on = run(&ds, kind, comm, gpus, Arc::new(FrequencyRanked), cli.epochs);
                let tag = format!("{model}/{}/{gpus} GPUs", comm_name(comm));
                println!(
                    "{tag}: h2d {} -> {} bytes ({} -> {} events), {} resident rows, \
                     {:.0}% hit rate, {}",
                    off.bytes_h2d,
                    on.bytes_h2d,
                    off.h2d_events,
                    on.h2d_events,
                    on.resident_rows,
                    100.0 * on.hit_rate,
                    if on.certified {
                        "certified"
                    } else {
                        "NOT CERTIFIED"
                    },
                );
                gate.check(
                    on.losses == off.losses,
                    &format!("{tag}: cache-on losses diverged"),
                );
                gate.check(
                    on.digest == off.digest,
                    &format!("{tag}: cache-on logits digest diverged"),
                );
                gate.check(
                    on.certified,
                    &format!("{tag}: pass 11 rejected the journal"),
                );
                if on.resident_rows > 0 {
                    gate.check(
                        on.bytes_h2d < off.bytes_h2d,
                        &format!(
                            "{tag}: cache-on H2D bytes {} not strictly below {}",
                            on.bytes_h2d, off.bytes_h2d
                        ),
                    );
                    gate.check(
                        on.h2d_events < off.h2d_events,
                        &format!(
                            "{tag}: cache-on H2D events {} not strictly below {}",
                            on.h2d_events, off.h2d_events
                        ),
                    );
                }
                if comm == CommMode::P2pRu && gpus == 4 && on.resident_rows > 0 {
                    reference_admitted = true;
                }
                report.sample(
                    JsonRow::new()
                        .str("model", model)
                        .str("comm", comm_name(comm))
                        .int("gpus", gpus as u64)
                        .int("off_h2d_bytes", off.bytes_h2d)
                        .int("on_h2d_bytes", on.bytes_h2d)
                        .int("off_h2d_events", off.h2d_events as u64)
                        .int("on_h2d_events", on.h2d_events as u64)
                        .int("resident_rows", on.resident_rows as u64)
                        .ratio("hit_rate", on.hit_rate)
                        .bool(
                            "bitwise_equal",
                            on.losses == off.losses && on.digest == off.digest,
                        )
                        .bool("pass11_certified", on.certified)
                        .hex("logits_digest", on.digest),
                );
            }
        }
    }
    gate.check(
        reference_admitted,
        "4-GPU p2pru admitted no rows: the reduction gates are vacuous",
    );

    let serving_hit_rate = clustered_serving_hit_rate(&ds);
    println!(
        "clustered serving hit rate: {:.0}%",
        100.0 * serving_hit_rate
    );
    gate.check(
        serving_hit_rate > 0.0,
        "clustered query stream never hit the cache",
    );
    report.sample(
        JsonRow::new()
            .str("model", "gcn")
            .str("comm", "p2pru")
            .int("gpus", 4)
            .str("workload", "clustered-serving")
            .ratio("hit_rate", serving_hit_rate),
    );

    report.write(&cli.out);
    gate.finish();
}
