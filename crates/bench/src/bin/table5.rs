//! Table 5: comparison with single-GPU DGL and single-node DistGNN on the
//! two small datasets (reddit, ogbn-products) for GCN and GAT with 2, 4,
//! and 8 layers. Speedups are normalized to DistGNN.

use hongtu_bench::{config::ExperimentConfig as C, dataset, header, run, time_cell, Table};
use hongtu_core::systems::{
    CpuSystem, CpuSystemKind, InMemoryKind, MultiGpuInMemory, SingleGpuFullGraph, Workload,
};
use hongtu_datasets::registry::small_keys;
use hongtu_nn::ModelKind;
use hongtu_sim::SimError;

fn main() {
    header(
        "Table 5: vs DGL (single GPU) and DistGNN (single CPU node), small graphs",
        "HongTu (SIGMOD 2023), Table 5",
    );
    let datasets: Vec<_> = small_keys().iter().map(|&k| dataset(k)).collect();
    for kind in [ModelKind::Gcn, ModelKind::Gat] {
        println!("\n--- {} ---", kind.name());
        let mut t = Table::new(vec!["Layers", "System", "RDT", "OPT"]);
        for layers in [2usize, 4, 8] {
            let mut rows: Vec<(String, Vec<Result<f64, SimError>>)> = vec![
                ("DistGNN".into(), Vec::new()),
                ("DGL".into(), Vec::new()),
                ("HongTu-IM".into(), Vec::new()),
                ("HongTu".into(), Vec::new()),
            ];
            for ds in &datasets {
                let w = Workload::new(ds, kind, C::hidden(ds.key), layers);
                rows[0].1.push(
                    CpuSystem::new(CpuSystemKind::SingleNode, C::cpu_single(), ds).epoch_time(&w),
                );
                rows[1]
                    .1
                    .push(SingleGpuFullGraph::new(C::machine(1)).epoch_time(&w));
                rows[2].1.push(
                    MultiGpuInMemory::new(InMemoryKind::HongTuIm, C::machine(4), ds, 1)
                        .epoch_time(&w),
                );
                rows[3]
                    .1
                    .push(run::hongtu_epoch(ds, kind, layers, 4).map(|r| r.time));
            }
            let base: Vec<f64> = rows[0]
                .1
                .iter()
                .map(|r| r.as_ref().copied().unwrap_or(f64::NAN))
                .collect();
            for (name, times) in rows {
                let cells: Vec<String> = times
                    .iter()
                    .zip(&base)
                    .map(|(r, &b)| match r {
                        Ok(v) if name != "DistGNN" && b.is_finite() => {
                            format!("{} ({:.0}x)", time_cell(r), b / v)
                        }
                        _ => time_cell(r),
                    })
                    .collect();
                t.row(
                    std::iter::once(layers.to_string())
                        .chain(std::iter::once(name))
                        .chain(cells)
                        .collect(),
                );
            }
        }
        t.print();
    }
    println!();
    println!("paper shape: GPU systems are >10x faster than the CPU system; HongTu-IM");
    println!("~= DGL; HongTu is 1.3x-3.8x slower than DGL (offloading overhead) but is");
    println!("the only system that also handles the large graphs (Table 6).");
}
