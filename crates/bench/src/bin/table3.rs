//! Table 3: neighbor replication factor α of the three large graphs under
//! 2..512 partitions.

use hongtu_bench::{dataset, header, Table};
use hongtu_datasets::registry::large_keys;
use hongtu_partition::{multilevel::metis_like, replication_factor};

fn main() {
    header(
        "Table 3: neighbor replication factor α",
        "HongTu (SIGMOD 2023), Table 3",
    );
    let parts = [2usize, 4, 8, 16, 32, 64, 128, 256, 512];
    let mut t = Table::new(
        std::iter::once("Partitions".to_string())
            .chain(parts.iter().map(|p| p.to_string()))
            .collect::<Vec<_>>(),
    );
    for key in large_keys() {
        let ds = dataset(key);
        let mut row = vec![format!("{} ({})", key.real_name(), key.abbrev())];
        for &p in &parts {
            let a = metis_like(&ds.graph, p, hongtu_bench::SEED);
            row.push(format!("{:.2}", replication_factor(&ds.graph, &a)));
        }
        t.row(row);
    }
    t.print();
    println!();
    println!("paper: it-2004 1.23→1.85, ogbn-paper (α₂₅₆=10.6, α₅₁₂=12.3),");
    println!("       friendster 1.32→18.1 — α grows with partition count and the");
    println!("       social graph (FDS) replicates far more than the web graph (IT).");
}
