//! Ablations of HongTu's design choices (DESIGN.md §6):
//!
//! 1. intermediate-data strategy: hybrid caching vs pure recomputation,
//!    GCN vs GAT (the §4.2 trade-off);
//! 2. reorganization (Algorithm 4) on/off;
//! 3. level-1 partitioner: portfolio (multilevel/range) vs hash;
//! 4. interconnect: NVLink vs PCIe-only (the §5.3 discussion — inter-GPU
//!    sharing only pays on fast links; intra-GPU reuse always pays).

use hongtu_bench::{
    config::ExperimentConfig as C, dataset, format_seconds, header, run, Table, SEED,
};
use hongtu_core::{
    comm_cost, reorganize, CommMode, CommVolumes, DedupPlan, HongTuConfig, MemoryStrategy,
};
use hongtu_datasets::DatasetKey;
use hongtu_nn::ModelKind;
use hongtu_partition::{simple::HashPartitioner, TwoLevelPartition};

fn main() {
    header("Ablations of HongTu's design choices", "DESIGN.md §6");

    // ---- 1. memory strategy × model ----
    println!("\n[1] intermediate-data strategy (FDS, 2 layers):");
    let ds = dataset(DatasetKey::Fds);
    let mut t = Table::new(vec!["model", "strategy", "epoch time", "note"]);
    for kind in [ModelKind::Gcn, ModelKind::Gat] {
        for (strategy, name) in [
            (MemoryStrategy::Hybrid, "hybrid"),
            (MemoryStrategy::Recompute, "recompute"),
        ] {
            let mut cfg = HongTuConfig::full(C::machine(4));
            cfg.memory = strategy;
            let r = run::hongtu_engine_with(&ds, kind, 2, 4, cfg)
                .and_then(|mut e| e.train_epoch())
                .expect("epoch");
            let note = match (kind, strategy) {
                (ModelKind::Gat, MemoryStrategy::Hybrid) => {
                    "GAT declines agg caching; falls back to recompute"
                }
                (ModelKind::Gcn, MemoryStrategy::Hybrid) => {
                    "O(|V|) checkpoint load replaces O(a|V|) reload + O(|E|) recompute"
                }
                _ => "",
            };
            t.row(vec![
                kind.name().to_string(),
                name.to_string(),
                format_seconds(r.time),
                note.to_string(),
            ]);
        }
    }
    t.print();

    // ---- 2. reorganization on/off ----
    println!("\n[2] Algorithm 4 reorganization (per-epoch time, GCN-2):");
    let mut t = Table::new(vec!["dataset", "reorg off", "reorg on", "gain"]);
    for key in [DatasetKey::Opr, DatasetKey::Fds] {
        let ds = dataset(key);
        let time = |reorg: bool| {
            let mut cfg = HongTuConfig::full(C::machine(4));
            cfg.reorganize = reorg;
            run::hongtu_engine_with(&ds, ModelKind::Gcn, 2, 4, cfg)
                .and_then(|mut e| e.train_epoch())
                .expect("epoch")
                .time
        };
        let off = time(false);
        let on = time(true);
        t.row(vec![
            key.abbrev().to_string(),
            format_seconds(off),
            format_seconds(on),
            format!("{:+.1}%", 100.0 * (off - on) / off),
        ]);
    }
    t.print();

    // ---- 3. partitioner quality → communication volumes ----
    println!("\n[3] level-1 partitioner (OPR, 4x32 chunks, Eq.4 cost):");
    let ds = dataset(DatasetKey::Opr);
    let mut t = Table::new(vec![
        "partitioner",
        "V_ori/|V|",
        "H2D reduction",
        "Eq.4 cost",
        "epoch (dedup)",
        "epoch (vanilla)",
    ]);
    let cfg = C::machine(4);
    let norm = ds.num_vertices() as f64;
    let portfolio = TwoLevelPartition::build(&ds.graph, 4, 32, SEED);
    let hash = TwoLevelPartition::build_with(&ds.graph, 4, 32, &HashPartitioner);
    for (name, plan) in [("portfolio", &portfolio), ("hash", &hash)] {
        let v = CommVolumes::from_plan(&DedupPlan::build(plan));
        let run_with = |comm: CommMode| {
            let mut config = HongTuConfig::full(cfg.clone());
            config.comm = comm;
            config.reorganize = false;
            hongtu_core::HongTuEngine::with_plan(
                &ds,
                ModelKind::Gcn,
                C::hidden(ds.key),
                2,
                plan.clone(),
                config,
            )
            .and_then(|mut e| e.train_epoch())
            .expect("epoch")
            .time
        };
        t.row(vec![
            name.to_string(),
            format!("{:.2}", v.v_ori as f64 / norm),
            format!("{:.0}%", 100.0 * v.h2d_reduction()),
            format_seconds(comm_cost(v, &cfg, 128)),
            format_seconds(run_with(CommMode::P2pRu)),
            format_seconds(run_with(CommMode::Vanilla)),
        ]);
    }
    t.print();
    println!("(hash partitioning inflates the neighbor sets and is clearly worse for");
    println!(" the vanilla transfer scheme; full communication deduplication recovers");
    println!(" most of the redundancy, making the engine far less partitioner-");
    println!(" sensitive — dedup acts as a safety net for bad partitions)");

    // ---- 4. interconnect sensitivity ----
    println!("\n[4] interconnect (FDS GCN-2): NVLink vs PCIe-only inter-GPU links:");
    let ds = dataset(DatasetKey::Fds);
    let mut t = Table::new(vec!["platform", "comm mode", "epoch time"]);
    for (pname, machine) in [
        ("NVLink", C::machine(4)),
        ("PCIe-only", C::machine(4).pcie_only()),
    ] {
        for (mname, comm) in [("vanilla", CommMode::Vanilla), ("dedup", CommMode::P2pRu)] {
            let mut cfg = HongTuConfig::full(machine.clone());
            cfg.comm = comm;
            cfg.reorganize = comm != CommMode::Vanilla;
            let r = run::hongtu_engine_with(&ds, ModelKind::Gcn, 2, 4, cfg)
                .and_then(|mut e| e.train_epoch())
                .expect("epoch");
            t.row(vec![
                pname.to_string(),
                mname.to_string(),
                format_seconds(r.time),
            ]);
        }
    }
    t.print();
    println!("(on PCIe-only platforms inter-GPU sharing buys little, but intra-GPU");
    println!(" reuse still reduces host traffic — §5.3's interconnect discussion)");

    // ---- 5. interleaved vs naive P2P schedule ----
    println!("\n[5] inter-GPU schedule (FDS GCN-2):");
    let ds = dataset(DatasetKey::Fds);
    let mut t = Table::new(vec!["schedule", "epoch time"]);
    for (name, interleaved) in [("interleaved", true), ("naive", false)] {
        let mut cfg = HongTuConfig::full(C::machine(4));
        cfg.interleaved = interleaved;
        let r = run::hongtu_engine_with(&ds, ModelKind::Gcn, 2, 4, cfg)
            .and_then(|mut e| e.train_epoch())
            .expect("epoch");
        t.row(vec![name.to_string(), format_seconds(r.time)]);
    }
    t.print();
    println!("(the interleaved schedule of §6 avoids several GPUs pulling from the");
    println!(" same source in one time slot)");

    // keep the reorganize symbol referenced for doc purposes
    let _ = reorganize;
}
