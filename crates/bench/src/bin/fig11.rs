//! Figure 11: scaling of HongTu from 1 to 4 GPUs on the three large
//! graphs, GCN and GAT, normalized to the 1-GPU time. The 1→2 step is
//! sub-proportional because with fewer GPUs than NUMA sockets the vertex
//! data must span both sockets and PCIe reads pay remote-memory penalties
//! (§7.6).

use hongtu_bench::{dataset, format_seconds, header, run, Table};
use hongtu_datasets::registry::large_keys;
use hongtu_nn::ModelKind;

fn main() {
    header(
        "Figure 11: scaling from 1 to 4 GPUs (normalized speedup)",
        "HongTu (SIGMOD 2023), Figure 11",
    );
    for kind in [ModelKind::Gcn, ModelKind::Gat] {
        println!("\n--- {} ---", kind.name());
        let mut t = Table::new(vec![
            "dataset",
            "1 GPU",
            "2 GPUs",
            "3 GPUs",
            "4 GPUs",
            "speedup@4",
        ]);
        for key in large_keys() {
            let ds = dataset(key);
            let times: Vec<f64> = (1..=4)
                .map(|g| {
                    run::hongtu_epoch(&ds, kind, 2, g)
                        .expect("offloading engine must fit at every GPU count")
                        .time
                })
                .collect();
            t.row(vec![
                key.abbrev().to_string(),
                format_seconds(times[0]),
                format!("{} ({:.2}x)", format_seconds(times[1]), times[0] / times[1]),
                format!("{} ({:.2}x)", format_seconds(times[2]), times[0] / times[2]),
                format!("{} ({:.2}x)", format_seconds(times[3]), times[0] / times[3]),
                format!("{:.2}x", times[0] / times[3]),
            ]);
        }
        t.print();
    }
    println!();
    println!("paper shape: 3.3x-3.7x (GCN) and 3.4x-3.8x (GAT) at 4 GPUs, with the");
    println!("1→2 step below 2x because ≤2-GPU configurations lack NUMA-local");
    println!("vertex-data placement.");
}
