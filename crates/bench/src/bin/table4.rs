//! Table 4: dataset description — the proxies' actual statistics next to
//! the full-scale originals they stand in for.

use hongtu_bench::{dataset, header, Table};
use hongtu_datasets::registry::all_keys;
use hongtu_graph::DegreeStats;

fn main() {
    header(
        "Table 4: dataset description (proxy vs original)",
        "HongTu (SIGMOD 2023), Table 4",
    );
    let mut t = Table::new(vec![
        "Dataset",
        "|V|",
        "|E|",
        "#F",
        "#L",
        "avg deg",
        "max in-deg",
        "train frac",
        "original |V|/|E|",
    ]);
    let originals = [
        ("0.23M / 114M", "reddit"),
        ("2.4M / 62M", "ogbn-products"),
        ("41M / 1.2B", "it-2004"),
        ("111M / 1.6B", "ogbn-paper"),
        ("65.6M / 2.5B", "friendster"),
    ];
    for (key, (orig, _)) in all_keys().into_iter().zip(originals) {
        let ds = dataset(key);
        let stats = DegreeStats::in_degrees(&ds.graph);
        t.row(vec![
            format!("{} ({})", key.real_name(), key.abbrev()),
            ds.num_vertices().to_string(),
            ds.num_edges().to_string(),
            ds.feat_dim().to_string(),
            ds.num_classes.to_string(),
            format!("{:.1}", stats.mean),
            stats.max.to_string(),
            format!(
                "{:.1}%",
                100.0 * ds.splits.num_train() as f64 / ds.num_vertices() as f64
            ),
            orig.to_string(),
        ]);
    }
    t.print();
    println!();
    println!("proxies are ~500-1000x smaller with matched structure (degree skew,");
    println!("id-locality, community signal) and the paper's train-split fractions.");
}
