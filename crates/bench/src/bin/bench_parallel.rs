//! `bench_parallel` — wall-clock comparison of the sequential and
//! parallel epoch executors, emitted as machine-readable JSON for CI.
//!
//! For each simulated-GPU count (1, 2, 4) the same engine configuration
//! is trained with both executors; the report records real (host)
//! per-epoch wall time, the speedup, and whether the training losses were
//! bitwise identical — the executor contract this repo certifies.
//!
//! ```text
//! cargo run -p hongtu-bench --bin bench_parallel -- [--out FILE] \
//!     [--epochs N] [--dataset rdt|opt|it|opr|fds]
//! ```
//!
//! Default output is `BENCH_parallel.json` in the current directory.
//! Worker-pool size follows `HONGTU_THREADS`; on a single-core runner the
//! speedup hovers around 1.0x (the numbers are honest wall-clock, not
//! simulated time), so no threshold is enforced here — CI archives the
//! artifact and the multi-core job demonstrates the scaling.

use hongtu_core::{ExecutionMode, HongTuConfig, HongTuEngine};
use hongtu_datasets::{load, DatasetKey};
use hongtu_nn::ModelKind;
use hongtu_sim::MachineConfig;
use hongtu_tensor::SeededRng;
use std::time::Instant;

struct Sample {
    gpus: usize,
    seq_epoch_s: f64,
    par_epoch_s: f64,
    losses_bitwise_equal: bool,
}

fn run_epochs(
    ds: &hongtu_datasets::Dataset,
    gpus: usize,
    exec: ExecutionMode,
    epochs: usize,
) -> (f64, Vec<f32>) {
    let mut cfg = HongTuConfig::full(MachineConfig::scaled(gpus, 512 << 20));
    cfg.exec = exec;
    let mut engine =
        HongTuEngine::new(ds, ModelKind::Gcn, 32, 2, 4, cfg).expect("engine construction");
    // Warm-up epoch: first-touch allocation and pool spin-up.
    engine.train_epoch().expect("warm-up epoch");
    let mut losses = Vec::with_capacity(epochs);
    let t0 = Instant::now();
    for _ in 0..epochs {
        losses.push(engine.train_epoch().expect("epoch").loss.loss);
    }
    (t0.elapsed().as_secs_f64() / epochs as f64, losses)
}

fn main() {
    let mut out = String::from("BENCH_parallel.json");
    let mut epochs = 3usize;
    let mut dataset = DatasetKey::Rdt;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let Some(value) = it.next() else {
            eprintln!(
                "usage: bench_parallel [--out FILE] [--epochs N] [--dataset rdt|opt|it|opr|fds]"
            );
            std::process::exit(2);
        };
        match flag.as_str() {
            "--out" => out = value,
            "--epochs" => epochs = value.parse().expect("--epochs: positive integer"),
            "--dataset" => {
                dataset = match value.to_lowercase().as_str() {
                    "rdt" => DatasetKey::Rdt,
                    "opt" => DatasetKey::Opt,
                    "it" => DatasetKey::It,
                    "opr" => DatasetKey::Opr,
                    "fds" => DatasetKey::Fds,
                    other => {
                        eprintln!("unknown dataset {other:?}");
                        std::process::exit(2);
                    }
                }
            }
            other => {
                eprintln!("unknown flag {other:?}");
                std::process::exit(2);
            }
        }
    }

    let ds = load(dataset, &mut SeededRng::new(99));
    let threads = hongtu_parallel::global().num_threads();
    let mut samples = Vec::new();
    for gpus in [1usize, 2, 4] {
        let (seq_s, seq_losses) = run_epochs(&ds, gpus, ExecutionMode::Sequential, epochs);
        let (par_s, par_losses) = run_epochs(&ds, gpus, ExecutionMode::Parallel, epochs);
        let equal = seq_losses == par_losses;
        println!(
            "{gpus} GPUs: sequential {:.1} ms/epoch, parallel {:.1} ms/epoch ({:.2}x), losses {}",
            seq_s * 1e3,
            par_s * 1e3,
            seq_s / par_s,
            if equal { "bitwise equal" } else { "DIVERGED" },
        );
        samples.push(Sample {
            gpus,
            seq_epoch_s: seq_s,
            par_epoch_s: par_s,
            losses_bitwise_equal: equal,
        });
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"dataset\": \"{}\",\n", dataset.abbrev()));
    json.push_str(&format!("  \"epochs\": {epochs},\n"));
    json.push_str(&format!("  \"threads\": {threads},\n"));
    json.push_str("  \"samples\": [\n");
    for (i, s) in samples.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"gpus\": {}, \"seq_epoch_s\": {:.6}, \"par_epoch_s\": {:.6}, \
             \"speedup\": {:.3}, \"losses_bitwise_equal\": {}}}{}\n",
            s.gpus,
            s.seq_epoch_s,
            s.par_epoch_s,
            s.seq_epoch_s / s.par_epoch_s,
            s.losses_bitwise_equal,
            if i + 1 < samples.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out, &json).expect("writing report");
    println!("wrote {out}");

    if samples.iter().any(|s| !s.losses_bitwise_equal) {
        eprintln!("FAIL: parallel losses diverged from sequential");
        std::process::exit(1);
    }
}
