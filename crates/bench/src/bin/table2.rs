//! Table 2 (systems landscape): demonstrates the capability matrix of the
//! paper's §2.4 — which class of system can run which workload at the
//! scaled device budget, and why the others fail.

use hongtu_bench::{config::ExperimentConfig as C, dataset, header, run, time_cell, Table};
use hongtu_core::systems::{
    InMemoryKind, Limitation, MultiGpuInMemory, NeutronStyle, RocStyle, Workload,
};
use hongtu_datasets::DatasetKey;
use hongtu_nn::ModelKind;

fn limitation_cell(r: Result<f64, Limitation>) -> String {
    match r {
        Ok(t) => hongtu_bench::format_seconds(t),
        Err(Limitation::OutOfMemory(_)) => "OOM".into(),
        Err(Limitation::Unsupported(_)) => "unsupported".into(),
    }
}

fn main() {
    header(
        "Table 2: full-graph system classes and their limitations",
        "HongTu (SIGMOD 2023), Table 2 / §2.4",
    );
    println!("workloads: GCN-3 and GAT-3 on the small RDT proxy and the large OPR proxy\n");
    let mut t = Table::new(vec![
        "System class",
        "stores VD",
        "stores ID",
        "full-nbr agg",
        "RDT GCN",
        "RDT GAT",
        "OPR GCN",
        "OPR GAT",
    ]);
    let rdt = dataset(DatasetKey::Rdt);
    let opt = dataset(DatasetKey::Opr);
    let machine = C::machine(4);
    let layers = 3;
    let hidden = 32;

    // In-memory (CAGNET/DGCL/PipeGCN/Sancus class).
    {
        let mut cells = vec![
            "in-memory (Sancus)".to_string(),
            "fully".into(),
            "fully".into(),
            "yes".into(),
        ];
        for ds in [&rdt, &opt] {
            for kind in [ModelKind::Gcn, ModelKind::Gat] {
                let sys = MultiGpuInMemory::new(InMemoryKind::Sancus, machine.clone(), ds, 1);
                cells.push(time_cell(
                    &sys.epoch_time(&Workload::new(ds, kind, hidden, layers)),
                ));
            }
        }
        t.row(cells);
    }
    // NeuGraph/NeutronStar class.
    {
        let mut cells = vec![
            "streamed VD (NeuGraph)".to_string(),
            "partially".into(),
            "fully".into(),
            "no (2-D split)".into(),
        ];
        for ds in [&rdt, &opt] {
            for kind in [ModelKind::Gcn, ModelKind::Gat] {
                let sys = NeutronStyle::new(machine.clone());
                cells.push(limitation_cell(
                    sys.epoch_time(&Workload::new(ds, kind, hidden, layers)),
                ));
            }
        }
        t.row(cells);
    }
    // ROC class.
    {
        let mut cells = vec![
            "swapped ID (ROC)".to_string(),
            "fully".into(),
            "partially".into(),
            "yes".into(),
        ];
        for ds in [&rdt, &opt] {
            for kind in [ModelKind::Gcn, ModelKind::Gat] {
                let sys = RocStyle::new(machine.clone());
                cells.push(limitation_cell(
                    sys.epoch_time(&Workload::new(ds, kind, hidden, layers)),
                ));
            }
        }
        t.row(cells);
    }
    // HongTu.
    {
        let mut cells = vec![
            "HongTu".to_string(),
            "partially".into(),
            "partially".into(),
            "yes".into(),
        ];
        for key in [DatasetKey::Rdt, DatasetKey::Opr] {
            let ds = dataset(key);
            for kind in [ModelKind::Gcn, ModelKind::Gat] {
                cells.push(time_cell(
                    &run::hongtu_epoch(&ds, kind, layers, 4).map(|r| r.time),
                ));
            }
        }
        t.row(cells);
    }
    t.print();
    println!();
    println!("paper shape (Table 2 + Limitation 1): in-memory systems cannot hold the");
    println!("large graph at all; NeuGraph-style streaming cannot express GAT's");
    println!("full-neighbor softmax and still keeps intermediates resident; ROC-style");
    println!("swapping needs resident vertex data; only HongTu stores *both* vertex");
    println!("and intermediate data partially while keeping full-neighbor semantics.");
}
