//! Table 8: the proportion of the two types of duplicated neighbor access
//! on the three billion-scale graphs, normalized to |V| — `V_ori`,
//! `V_ori − V_+p2p` (inter-GPU dedup), and `V_+p2p − V_+ru` (intra-GPU
//! reuse).

use hongtu_bench::{config::ExperimentConfig as C, dataset, header, Table};
use hongtu_core::{reorganize_guarded, CommVolumes, DedupPlan};
use hongtu_datasets::registry::large_keys;
use hongtu_nn::ModelKind;
use hongtu_partition::TwoLevelPartition;

fn main() {
    header(
        "Table 8: duplicated-access volumes (normalized to |V|)",
        "HongTu (SIGMOD 2023), Table 8 + §7.3 headline",
    );
    let mut t = Table::new(vec![
        "Dataset",
        "Chunks",
        "V_ori",
        "V_ori-V_+p2p",
        "V_+p2p-V_+ru",
        "H2D reduction",
    ]);
    for key in large_keys() {
        let ds = dataset(key);
        // Paper: 32/128/128 total chunks for IT/OPR/FDS GCN (m·n).
        let n = C::chunks(key, ModelKind::Gcn);
        let plan = TwoLevelPartition::build(&ds.graph, 4, n, hongtu_bench::SEED);
        let plan = reorganize_guarded(plan, &C::machine(4));
        let v = CommVolumes::from_plan(&DedupPlan::build(&plan));
        let norm = ds.num_vertices() as f64;
        t.row(vec![
            format!("{} ({})", key.real_name(), key.abbrev()),
            format!("{}", 4 * n),
            format!("{:.2}", v.v_ori as f64 / norm),
            format!(
                "{:.2} ({:.1}%)",
                v.inter_gpu() as f64 / norm,
                100.0 * v.inter_gpu() as f64 / v.v_ori as f64
            ),
            format!(
                "{:.2} ({:.1}%)",
                v.intra_gpu() as f64 / norm,
                100.0 * v.intra_gpu() as f64 / v.v_ori as f64
            ),
            format!("{:.0}%", 100.0 * v.h2d_reduction()),
        ]);
    }
    t.print();
    println!();
    println!("paper: it-2004 (32 chunks): 1.6 / 0.26 (16.2%) / 0.15 (9.2%);");
    println!("       ogbn-paper (128):    8.5 / 0.77 (9.0%)  / 4.1 (48.3%);");
    println!("       friendster (128):    10.7 / 2.50 (23.3%) / 5.09 (47.6%);");
    println!("       total H2D reduction 25%-71%; OPR benefits most from intra-GPU");
    println!("       reuse (citation-graph locality).");
}
