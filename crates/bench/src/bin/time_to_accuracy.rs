//! Extension experiment: time-to-accuracy.
//!
//! §7.1 argues that with unchanged training semantics, "shorter per-epoch
//! time indicates better time-to-accuracy performance". This binary makes
//! that concrete: identical loss trajectories for HongTu and the vanilla
//! offloading baseline, plotted against *cumulative simulated time* — the
//! dedup'd engine reaches every loss level 1.2×–2.6× sooner.

use hongtu_bench::{dataset, format_seconds, header, run, Table};
use hongtu_core::CommMode;
use hongtu_datasets::DatasetKey;
use hongtu_nn::ModelKind;

const EPOCHS: usize = 30;

fn main() {
    header(
        "Extension: time-to-accuracy, HongTu vs vanilla offloading (FDS, GCN-2)",
        "HongTu (SIGMOD 2023), §7.1 evaluation-metric argument",
    );
    let ds = dataset(DatasetKey::Fds);
    let mut curves: Vec<(&str, Vec<(f64, f32)>)> = Vec::new();
    for (name, comm) in [("HongTu", CommMode::P2pRu), ("Baseline", CommMode::Vanilla)] {
        let mut cfg =
            hongtu_core::HongTuConfig::full(hongtu_bench::config::ExperimentConfig::machine(4));
        cfg.comm = comm;
        cfg.reorganize = comm != CommMode::Vanilla;
        let mut engine = run::hongtu_engine_with(&ds, ModelKind::Gcn, 2, 4, cfg).expect("engine");
        let mut t = 0.0;
        let mut curve = Vec::new();
        for _ in 0..EPOCHS {
            let r = engine.train_epoch().expect("epoch");
            t += r.time;
            curve.push((t, r.loss.loss));
        }
        curves.push((name, curve));
    }

    let mut table = Table::new(vec![
        "epoch",
        "loss",
        "HongTu cumul.",
        "Baseline cumul.",
        "lead",
    ]);
    for e in (4..EPOCHS).step_by(5) {
        let (th, lh) = curves[0].1[e];
        let (tb, lb) = curves[1].1[e];
        // Reorganization permutes chunk order, so f32 summation order
        // differs slightly; semantics are identical.
        assert!(
            (lh - lb).abs() < 1e-3 * lb.abs().max(1.0),
            "identical semantics must give matching losses ({lh} vs {lb})"
        );
        table.row(vec![
            (e + 1).to_string(),
            format!("{lh:.4}"),
            format_seconds(th),
            format_seconds(tb),
            format!("{:.2}x", tb / th),
        ]);
    }
    table.print();
    println!();
    println!("both engines follow the *same* loss trajectory (full-graph semantics");
    println!("are unchanged); HongTu simply arrives at each point sooner — the");
    println!("per-epoch speedup is exactly the time-to-accuracy speedup.");
}
