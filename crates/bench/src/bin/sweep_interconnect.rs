//! Extension experiment: sensitivity of the dedup speedup to the
//! inter-GPU : host-GPU bandwidth ratio.
//!
//! §5.3 argues inter-GPU sharing helps exactly when `T_dd ≫ T_hd` while
//! intra-GPU reuse always helps. This sweep varies the NVLink bandwidth
//! from PCIe-parity (ratio 1) to NVLink-3.0 (ratio ~6.3) and beyond,
//! reporting the end-to-end dedup speedup on the duplication-heavy
//! friendster proxy.

use hongtu_bench::{config::ExperimentConfig as C, dataset, format_seconds, header, run, Table};
use hongtu_core::{CommMode, HongTuConfig};
use hongtu_datasets::DatasetKey;
use hongtu_nn::ModelKind;

fn main() {
    header(
        "Extension: dedup speedup vs inter-GPU bandwidth (FDS, GCN-2)",
        "HongTu (SIGMOD 2023), §5.3 'effectiveness with various interconnects'",
    );
    let ds = dataset(DatasetKey::Fds);
    let mut t = Table::new(vec![
        "T_dd / T_hd",
        "baseline",
        "+P2P",
        "+RU",
        "dedup speedup",
    ]);
    for ratio in [1.0f64, 2.0, 4.0, 6.25, 12.5, 25.0] {
        let mut machine = C::machine(4);
        machine.nvlink_bw = machine.pcie_bw * ratio;
        let time = |comm: CommMode| {
            let mut cfg = HongTuConfig::full(machine.clone());
            cfg.comm = comm;
            cfg.reorganize = comm != CommMode::Vanilla;
            run::hongtu_engine_with(&ds, ModelKind::Gcn, 2, 4, cfg)
                .and_then(|mut e| e.train_epoch())
                .expect("epoch")
                .time
        };
        let base = time(CommMode::Vanilla);
        let p2p = time(CommMode::P2p);
        let ru = time(CommMode::P2pRu);
        t.row(vec![
            format!("{ratio:.2}x"),
            format_seconds(base),
            format_seconds(p2p),
            format_seconds(ru),
            format!("{:.2}x", base / ru),
        ]);
    }
    t.print();
    println!();
    println!("shape: at PCIe parity (1x) the gain comes from intra-GPU reuse alone;");
    println!("the inter-GPU contribution grows with the link ratio and saturates once");
    println!("D2D time vanishes from the critical path — matching §5.3's discussion.");
}
