//! `bench_overlap` — simulated-time and peak-memory comparison of the
//! additive (`Off`) and double-buffered (`DoubleBuffer`) schedules,
//! emitted as machine-readable JSON for CI.
//!
//! For each model × comm mode × GPU count the same engine configuration
//! is trained under both overlap modes; the report records *simulated*
//! per-epoch seconds, peak GPU memory, the overlap speedup, and whether
//! the training losses were bitwise identical — the overlap contract
//! this repo certifies. The process exits 1 if any losses diverge, or if
//! double buffering is not strictly faster on a multi-GPU dedup
//! (P2P / P2P+RU) configuration.
//!
//! ```text
//! cargo run -p hongtu-bench --bin bench_overlap -- [--out FILE] \
//!     [--epochs N] [--dataset rdt|opt|it|opr|fds]
//! ```
//!
//! Default output is `BENCH_overlap.json` in the current directory.

use hongtu_bench::harness::{
    comm_name, scaled_machine, BenchCli, Gate, JsonReport, JsonRow, COMM_MODES, GPU_COUNTS, MODELS,
};
use hongtu_core::{CommMode, HongTuConfig, HongTuEngine, OverlapMode};
use hongtu_nn::ModelKind;
use hongtu_tensor::SeededRng;

struct Sample {
    model: &'static str,
    comm: &'static str,
    gpus: usize,
    off_epoch_s: f64,
    db_epoch_s: f64,
    off_peak_bytes: usize,
    db_peak_bytes: usize,
    losses_bitwise_equal: bool,
    /// Whether this configuration must show a strict overlap win.
    must_overlap: bool,
}

fn run_epochs(
    ds: &hongtu_datasets::Dataset,
    kind: ModelKind,
    comm: CommMode,
    gpus: usize,
    overlap: OverlapMode,
    epochs: usize,
) -> (f64, usize, Vec<f32>) {
    let mut cfg = HongTuConfig::full(scaled_machine(gpus));
    cfg.comm = comm;
    cfg.reorganize = comm != CommMode::Vanilla;
    cfg.overlap = overlap;
    let mut engine = HongTuEngine::new(ds, kind, 32, 2, 4, cfg).expect("engine construction");
    let mut losses = Vec::with_capacity(epochs);
    let mut sim_s = 0.0;
    for _ in 0..epochs {
        let r = engine.train_epoch().expect("epoch");
        sim_s += r.time;
        losses.push(r.loss.loss);
    }
    (
        sim_s / epochs as f64,
        engine.machine().max_gpu_peak(),
        losses,
    )
}

fn main() {
    let cli = BenchCli::parse("bench_overlap", "BENCH_overlap.json", 2);
    let ds = hongtu_datasets::load(cli.dataset, &mut SeededRng::new(99));
    let mut samples = Vec::new();
    for (kind, model) in MODELS {
        for comm in COMM_MODES {
            for gpus in GPU_COUNTS {
                let (off_s, off_peak, off_losses) =
                    run_epochs(&ds, kind, comm, gpus, OverlapMode::Off, cli.epochs);
                let (db_s, db_peak, db_losses) =
                    run_epochs(&ds, kind, comm, gpus, OverlapMode::DoubleBuffer, cli.epochs);
                let equal = off_losses == db_losses;
                println!(
                    "{model}/{}/{gpus} GPUs: off {:.3} ms, doublebuffer {:.3} ms ({:.2}x), \
                     peak {:.1} -> {:.1} MB, losses {}",
                    comm_name(comm),
                    off_s * 1e3,
                    db_s * 1e3,
                    off_s / db_s,
                    off_peak as f64 / (1 << 20) as f64,
                    db_peak as f64 / (1 << 20) as f64,
                    if equal { "bitwise equal" } else { "DIVERGED" },
                );
                samples.push(Sample {
                    model,
                    comm: comm_name(comm),
                    gpus,
                    off_epoch_s: off_s,
                    db_epoch_s: db_s,
                    off_peak_bytes: off_peak,
                    db_peak_bytes: db_peak,
                    losses_bitwise_equal: equal,
                    must_overlap: gpus > 1 && comm != CommMode::Vanilla,
                });
            }
        }
    }

    let mut report = JsonReport::new()
        .str("dataset", cli.dataset.abbrev())
        .int("epochs", cli.epochs as u64);
    for s in &samples {
        report.sample(
            JsonRow::new()
                .str("model", s.model)
                .str("comm", s.comm)
                .int("gpus", s.gpus as u64)
                .f64("off_sim_epoch_s", s.off_epoch_s)
                .f64("doublebuffer_sim_epoch_s", s.db_epoch_s)
                .ratio("overlap_speedup", s.off_epoch_s / s.db_epoch_s)
                .int("off_peak_bytes", s.off_peak_bytes as u64)
                .int("doublebuffer_peak_bytes", s.db_peak_bytes as u64)
                .bool("losses_bitwise_equal", s.losses_bitwise_equal),
        );
    }
    report.write(&cli.out);

    let mut gate = Gate::new();
    for s in &samples {
        gate.check(
            s.losses_bitwise_equal,
            &format!(
                "{}/{}/{} GPUs: double-buffered losses diverged",
                s.model, s.comm, s.gpus
            ),
        );
        if s.must_overlap {
            gate.check(
                s.db_epoch_s < s.off_epoch_s,
                &format!(
                    "{}/{}/{} GPUs: doublebuffer {} s not strictly below off {} s",
                    s.model, s.comm, s.gpus, s.db_epoch_s, s.off_epoch_s
                ),
            );
        }
    }
    gate.finish();
}
