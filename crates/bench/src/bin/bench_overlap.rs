//! `bench_overlap` — simulated-time and peak-memory comparison of the
//! additive (`Off`) and double-buffered (`DoubleBuffer`) schedules,
//! emitted as machine-readable JSON for CI.
//!
//! For each model × comm mode × GPU count the same engine configuration
//! is trained under both overlap modes; the report records *simulated*
//! per-epoch seconds, peak GPU memory, the overlap speedup, and whether
//! the training losses were bitwise identical — the overlap contract
//! this repo certifies. The process exits 1 if any losses diverge, or if
//! double buffering is not strictly faster on a multi-GPU dedup
//! (P2P / P2P+RU) configuration.
//!
//! ```text
//! cargo run -p hongtu-bench --bin bench_overlap -- [--out FILE] \
//!     [--epochs N] [--dataset rdt|opt|it|opr|fds]
//! ```
//!
//! Default output is `BENCH_overlap.json` in the current directory.

use hongtu_core::{CommMode, HongTuConfig, HongTuEngine, OverlapMode};
use hongtu_datasets::{load, DatasetKey};
use hongtu_nn::ModelKind;
use hongtu_sim::MachineConfig;
use hongtu_tensor::SeededRng;

struct Sample {
    model: &'static str,
    comm: &'static str,
    gpus: usize,
    off_epoch_s: f64,
    db_epoch_s: f64,
    off_peak_bytes: usize,
    db_peak_bytes: usize,
    losses_bitwise_equal: bool,
    /// Whether this configuration must show a strict overlap win.
    must_overlap: bool,
}

fn run_epochs(
    ds: &hongtu_datasets::Dataset,
    kind: ModelKind,
    comm: CommMode,
    gpus: usize,
    overlap: OverlapMode,
    epochs: usize,
) -> (f64, usize, Vec<f32>) {
    let mut cfg = HongTuConfig::full(MachineConfig::scaled(gpus, 512 << 20));
    cfg.comm = comm;
    cfg.reorganize = comm != CommMode::Vanilla;
    cfg.overlap = overlap;
    let mut engine = HongTuEngine::new(ds, kind, 32, 2, 4, cfg).expect("engine construction");
    let mut losses = Vec::with_capacity(epochs);
    let mut sim_s = 0.0;
    for _ in 0..epochs {
        let r = engine.train_epoch().expect("epoch");
        sim_s += r.time;
        losses.push(r.loss.loss);
    }
    (
        sim_s / epochs as f64,
        engine.machine().max_gpu_peak(),
        losses,
    )
}

fn comm_name(c: CommMode) -> &'static str {
    match c {
        CommMode::Vanilla => "vanilla",
        CommMode::P2p => "p2p",
        CommMode::P2pRu => "p2pru",
    }
}

fn main() {
    let mut out = String::from("BENCH_overlap.json");
    let mut epochs = 2usize;
    let mut dataset = DatasetKey::Rdt;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let Some(value) = it.next() else {
            eprintln!(
                "usage: bench_overlap [--out FILE] [--epochs N] [--dataset rdt|opt|it|opr|fds]"
            );
            std::process::exit(2);
        };
        match flag.as_str() {
            "--out" => out = value,
            "--epochs" => epochs = value.parse().expect("--epochs: positive integer"),
            "--dataset" => {
                dataset = match value.to_lowercase().as_str() {
                    "rdt" => DatasetKey::Rdt,
                    "opt" => DatasetKey::Opt,
                    "it" => DatasetKey::It,
                    "opr" => DatasetKey::Opr,
                    "fds" => DatasetKey::Fds,
                    other => {
                        eprintln!("unknown dataset {other:?}");
                        std::process::exit(2);
                    }
                }
            }
            other => {
                eprintln!("unknown flag {other:?}");
                std::process::exit(2);
            }
        }
    }

    let ds = load(dataset, &mut SeededRng::new(99));
    let mut samples = Vec::new();
    for (kind, model) in [
        (ModelKind::Gcn, "gcn"),
        (ModelKind::Gat, "gat"),
        (ModelKind::Sage, "sage"),
    ] {
        for comm in [CommMode::Vanilla, CommMode::P2p, CommMode::P2pRu] {
            for gpus in [1usize, 2, 4] {
                let (off_s, off_peak, off_losses) =
                    run_epochs(&ds, kind, comm, gpus, OverlapMode::Off, epochs);
                let (db_s, db_peak, db_losses) =
                    run_epochs(&ds, kind, comm, gpus, OverlapMode::DoubleBuffer, epochs);
                let equal = off_losses == db_losses;
                println!(
                    "{model}/{}/{gpus} GPUs: off {:.3} ms, doublebuffer {:.3} ms ({:.2}x), \
                     peak {:.1} -> {:.1} MB, losses {}",
                    comm_name(comm),
                    off_s * 1e3,
                    db_s * 1e3,
                    off_s / db_s,
                    off_peak as f64 / (1 << 20) as f64,
                    db_peak as f64 / (1 << 20) as f64,
                    if equal { "bitwise equal" } else { "DIVERGED" },
                );
                samples.push(Sample {
                    model,
                    comm: comm_name(comm),
                    gpus,
                    off_epoch_s: off_s,
                    db_epoch_s: db_s,
                    off_peak_bytes: off_peak,
                    db_peak_bytes: db_peak,
                    losses_bitwise_equal: equal,
                    must_overlap: gpus > 1 && comm != CommMode::Vanilla,
                });
            }
        }
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"dataset\": \"{}\",\n", dataset.abbrev()));
    json.push_str(&format!("  \"epochs\": {epochs},\n"));
    json.push_str("  \"samples\": [\n");
    for (i, s) in samples.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"model\": \"{}\", \"comm\": \"{}\", \"gpus\": {}, \
             \"off_sim_epoch_s\": {:.9}, \"doublebuffer_sim_epoch_s\": {:.9}, \
             \"overlap_speedup\": {:.4}, \"off_peak_bytes\": {}, \
             \"doublebuffer_peak_bytes\": {}, \"losses_bitwise_equal\": {}}}{}\n",
            s.model,
            s.comm,
            s.gpus,
            s.off_epoch_s,
            s.db_epoch_s,
            s.off_epoch_s / s.db_epoch_s,
            s.off_peak_bytes,
            s.db_peak_bytes,
            s.losses_bitwise_equal,
            if i + 1 < samples.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out, &json).expect("writing report");
    println!("wrote {out}");

    let mut bad = false;
    for s in &samples {
        if !s.losses_bitwise_equal {
            eprintln!(
                "FAIL: {}/{}/{} GPUs: double-buffered losses diverged",
                s.model, s.comm, s.gpus
            );
            bad = true;
        }
        if s.must_overlap && s.db_epoch_s >= s.off_epoch_s {
            eprintln!(
                "FAIL: {}/{}/{} GPUs: doublebuffer {} s not strictly below off {} s",
                s.model, s.comm, s.gpus, s.db_epoch_s, s.off_epoch_s
            );
            bad = true;
        }
    }
    if bad {
        std::process::exit(1);
    }
}
