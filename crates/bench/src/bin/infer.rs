//! Command-line inference runner: full-graph, forward-only serving over
//! a `Mode::Infer` session — layer-wise progression, no checkpoints, no
//! gradients. Emits a logits digest (FNV-1a over the exact f32 bits, so
//! two invocations agree iff the logits are bitwise identical), the
//! simulated epoch time, and the peak memory on both tiers.
//!
//! ```text
//! cargo run -p hongtu-bench --bin infer -- \
//!     --dataset rdt --model gcn --layers 2 --hidden 32 \
//!     --chunks 4 --gpus 4 --gpu-mem-mb 256 \
//!     [--comm full|p2p|vanilla] [--exec sequential|parallel] \
//!     [--overlap off|doublebuffer] [--epochs N] [--no-reorg] [--seed N] \
//!     [--load model.htgm] [--quiet]
//! ```

use hongtu_core::cli::{
    logits_digest, parse_comm, parse_dataset, parse_exec, parse_model, parse_overlap,
};
use hongtu_core::{CommMode, ExecutionMode, HongTuConfig, OverlapMode, Session};
use hongtu_datasets::{load, DatasetKey};
use hongtu_nn::ModelKind;
use hongtu_tensor::SeededRng;

#[derive(Debug)]
struct Args {
    dataset: DatasetKey,
    model: ModelKind,
    layers: usize,
    hidden: usize,
    epochs: usize,
    chunks: usize,
    gpus: usize,
    gpu_mem_mb: usize,
    comm: CommMode,
    reorganize: bool,
    seed: u64,
    load: Option<String>,
    quiet: bool,
    exec: ExecutionMode,
    overlap: OverlapMode,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            dataset: DatasetKey::Rdt,
            model: ModelKind::Gcn,
            layers: 2,
            hidden: 32,
            epochs: 1,
            chunks: 4,
            gpus: 4,
            gpu_mem_mb: 256,
            comm: CommMode::P2pRu,
            reorganize: true,
            seed: 42,
            load: None,
            quiet: false,
            exec: ExecutionMode::Sequential,
            overlap: OverlapMode::Off,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: infer [--dataset rdt|opt|it|opr|fds] [--model gcn|gat|sage|gin|commnet|ggnn]\n\
         \x20            [--layers N] [--hidden N] [--epochs N] [--chunks N] [--gpus N]\n\
         \x20            [--gpu-mem-mb N] [--comm full|p2p|vanilla]\n\
         \x20            [--exec sequential|parallel] [--overlap off|doublebuffer]\n\
         \x20            [--no-reorg] [--seed N] [--load FILE] [--quiet]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    let bad = |flag: &str, val: &str| -> ! {
        eprintln!("invalid value {val:?} for {flag}");
        usage()
    };
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--no-reorg" => {
                args.reorganize = false;
                continue;
            }
            "--quiet" => {
                args.quiet = true;
                continue;
            }
            "--help" | "-h" => usage(),
            _ => {}
        }
        let Some(value) = it.next() else { usage() };
        match flag.as_str() {
            "--dataset" => {
                args.dataset = parse_dataset(&value).unwrap_or_else(|_| bad("--dataset", &value))
            }
            "--model" => {
                args.model = parse_model(&value).unwrap_or_else(|_| bad("--model", &value))
            }
            "--comm" => args.comm = parse_comm(&value).unwrap_or_else(|_| bad("--comm", &value)),
            "--exec" => args.exec = parse_exec(&value).unwrap_or_else(|_| bad("--exec", &value)),
            "--overlap" => {
                args.overlap = parse_overlap(&value).unwrap_or_else(|_| bad("--overlap", &value))
            }
            "--load" => args.load = Some(value),
            "--layers" | "--hidden" | "--epochs" | "--chunks" | "--gpus" | "--gpu-mem-mb"
            | "--seed" => {
                let Ok(n) = value.parse::<usize>() else {
                    bad(&flag, &value)
                };
                match flag.as_str() {
                    "--layers" => args.layers = n,
                    "--hidden" => args.hidden = n,
                    "--epochs" => args.epochs = n,
                    "--chunks" => args.chunks = n,
                    "--gpus" => args.gpus = n,
                    "--gpu-mem-mb" => args.gpu_mem_mb = n,
                    "--seed" => args.seed = n as u64,
                    _ => unreachable!(),
                }
            }
            _ => {
                eprintln!("unknown flag {flag:?}");
                usage();
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let dataset = load(args.dataset, &mut SeededRng::new(args.seed));
    if !args.quiet {
        println!(
            "dataset {} ({}): {} vertices, {} edges, {} classes",
            args.dataset.abbrev(),
            args.dataset.real_name(),
            dataset.num_vertices(),
            dataset.num_edges(),
            dataset.num_classes
        );
    }
    let config = match HongTuConfig::builder()
        .gpus(args.gpus)
        .gpu_mem_mb(args.gpu_mem_mb)
        .comm(args.comm)
        .reorganize(args.reorganize)
        .exec(args.exec)
        .overlap(args.overlap)
        .infer()
        .build()
    {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };
    let mut session = match Session::new(
        &dataset,
        args.model,
        args.hidden,
        args.layers,
        args.chunks,
        config,
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("session construction failed: {e}");
            std::process::exit(1);
        }
    };
    if let Some(path) = &args.load {
        match hongtu_nn::load_model_file(path) {
            Ok(model) => session.set_model(model),
            Err(e) => {
                eprintln!("loading model failed: {e}");
                std::process::exit(1);
            }
        }
    }
    let mut inferencer = session.inferencer();
    let mut last = None;
    for epoch in 1..=args.epochs.max(1) {
        match inferencer.epoch() {
            Ok(r) => {
                if !args.quiet {
                    println!(
                        "epoch {epoch:>3}: logits {:016x}  sim {:.3} ms",
                        logits_digest(&r.logits),
                        r.time * 1e3
                    );
                }
                last = Some(r);
            }
            Err(e) => {
                eprintln!("inference epoch {epoch} failed: {e}");
                std::process::exit(1);
            }
        }
    }
    let r = last.expect("at least one epoch runs");
    println!(
        "logits digest {:016x} | sim {:.3} ms | peak GPU {:.1} MB | peak host {:.1} MB",
        logits_digest(&r.logits),
        r.time * 1e3,
        r.peak_gpu_bytes as f64 / (1 << 20) as f64,
        r.peak_host_bytes as f64 / (1 << 20) as f64
    );
}
