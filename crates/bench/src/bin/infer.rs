//! Command-line inference runner: full-graph, forward-only serving over
//! a `Mode::Infer` session — layer-wise progression, no checkpoints, no
//! gradients. Emits a logits digest (FNV-1a over the exact f32 bits, so
//! two invocations agree iff the logits are bitwise identical), the
//! simulated epoch time, and the peak memory on both tiers.
//!
//! ```text
//! cargo run -p hongtu-bench --bin infer -- \
//!     --dataset rdt --model gcn --layers 2 --hidden 32 \
//!     --chunks 4 --gpus 4 --gpu-mem-mb 256 \
//!     [--comm full|p2p|vanilla] [--exec sequential|parallel] \
//!     [--overlap off|doublebuffer] [--epochs N] [--no-reorg] [--seed N] \
//!     [--load model.htgm] [--quiet] \
//!     [--serve N] [--qps RATE] [--batch-window N]
//! ```
//!
//! With `--serve N` the bin switches from full-epoch inference to the
//! online serving path: N vertex-subset requests arrive open-loop
//! (Poisson at `--qps`, default auto-calibrated to ~2.5 arrivals per
//! sweep), are FIFO-batched up to `--batch-window` per pruned sweep,
//! and the run reports p50/p99 latency, queries/sec and the reject
//! rate.
//!
//! `--deltas N` interleaves N graph updates (delta batches of kind
//! `--delta-mix edge|feature|mixed`, default mixed) into the serving
//! stream, committed FIFO through the session's incremental cone-local
//! recompute: queries reflect exactly the updates enqueued before
//! them. The run additionally reports committed/rejected update counts
//! and update-latency percentiles.

use hongtu_core::cli::{
    logits_digest, parse_cache, parse_comm, parse_dataset, parse_exec, parse_model, parse_overlap,
    FlagParser,
};
use hongtu_core::{
    CacheOff, CachePolicy, CommMode, ExecutionMode, HongTuConfig, OverlapMode, Session,
};
use hongtu_datasets::{load, DatasetKey};
use hongtu_delta::{toggle_workload, DeltaMix, DynamicGraph};
use hongtu_nn::ModelKind;
use hongtu_serving::{
    poisson_workload, run_mixed_open_loop, run_open_loop, AdmissionControl, Request, UpdateRequest,
    WorkItem,
};
use hongtu_tensor::SeededRng;
use std::sync::Arc;

struct Args {
    dataset: DatasetKey,
    model: ModelKind,
    layers: usize,
    hidden: usize,
    epochs: usize,
    chunks: usize,
    gpus: usize,
    gpu_mem_mb: usize,
    comm: CommMode,
    reorganize: bool,
    seed: u64,
    load: Option<String>,
    quiet: bool,
    exec: ExecutionMode,
    overlap: OverlapMode,
    serve: Option<usize>,
    qps: f64,
    batch_window: usize,
    deltas: usize,
    delta_mix: DeltaMix,
    cache: Arc<dyn CachePolicy>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            dataset: DatasetKey::Rdt,
            model: ModelKind::Gcn,
            layers: 2,
            hidden: 32,
            epochs: 1,
            chunks: 4,
            gpus: 4,
            gpu_mem_mb: 256,
            comm: CommMode::P2pRu,
            reorganize: true,
            seed: 42,
            load: None,
            quiet: false,
            exec: ExecutionMode::Sequential,
            overlap: OverlapMode::Off,
            serve: None,
            qps: 0.0,
            batch_window: 4,
            deltas: 0,
            delta_mix: DeltaMix::Mixed,
            cache: Arc::new(CacheOff),
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: infer [--dataset rdt|opt|it|opr|fds] [--model gcn|gat|sage|gin|commnet|ggnn]\n\
         \x20            [--layers N] [--hidden N] [--epochs N] [--chunks N] [--gpus N]\n\
         \x20            [--gpu-mem-mb N] [--comm full|p2p|vanilla]\n\
         \x20            [--exec sequential|parallel] [--overlap off|doublebuffer]\n\
         \x20            [--no-reorg] [--seed N] [--load FILE] [--quiet]\n\
         \x20            [--cache off|freq|degree]\n\
         \x20            [--serve N] [--qps RATE] [--batch-window N]\n\
         \x20            [--deltas N] [--delta-mix edge|feature|mixed]"
    );
    std::process::exit(2);
}

fn try_parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = FlagParser::from_env();
    while let Some(flag) = it.next_flag() {
        match flag.as_str() {
            "--no-reorg" => args.reorganize = false,
            "--quiet" => args.quiet = true,
            "--help" | "-h" => usage(),
            "--dataset" => args.dataset = it.value_with("--dataset", parse_dataset)?,
            "--model" => args.model = it.value_with("--model", parse_model)?,
            "--comm" => args.comm = it.value_with("--comm", parse_comm)?,
            "--exec" => args.exec = it.value_with("--exec", parse_exec)?,
            "--overlap" => args.overlap = it.value_with("--overlap", parse_overlap)?,
            "--cache" => args.cache = it.value_with("--cache", parse_cache)?,
            "--load" => args.load = Some(it.value("--load")?),
            "--layers" => args.layers = it.parse_value("--layers")?,
            "--hidden" => args.hidden = it.parse_value("--hidden")?,
            "--epochs" => args.epochs = it.parse_value("--epochs")?,
            "--chunks" => args.chunks = it.parse_value("--chunks")?,
            "--gpus" => args.gpus = it.parse_value("--gpus")?,
            "--gpu-mem-mb" => args.gpu_mem_mb = it.parse_value("--gpu-mem-mb")?,
            "--seed" => args.seed = it.parse_value("--seed")?,
            "--serve" => args.serve = Some(it.parse_value("--serve")?),
            "--qps" => args.qps = it.parse_value("--qps")?,
            "--batch-window" => args.batch_window = it.parse_value("--batch-window")?,
            "--deltas" => args.deltas = it.parse_value("--deltas")?,
            "--delta-mix" => {
                args.delta_mix = it.value_with("--delta-mix", |s| {
                    DeltaMix::parse(s).ok_or_else(|| format!("bad --delta-mix {s:?}"))
                })?
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn parse_args() -> Args {
    try_parse_args().unwrap_or_else(|msg| {
        eprintln!("{msg}");
        usage()
    })
}

fn main() {
    let args = parse_args();
    let dataset = load(args.dataset, &mut SeededRng::new(args.seed));
    if !args.quiet {
        println!(
            "dataset {} ({}): {} vertices, {} edges, {} classes",
            args.dataset.abbrev(),
            args.dataset.real_name(),
            dataset.num_vertices(),
            dataset.num_edges(),
            dataset.num_classes
        );
    }
    let config = match HongTuConfig::builder()
        .gpus(args.gpus)
        .gpu_mem_mb(args.gpu_mem_mb)
        .comm(args.comm)
        .reorganize(args.reorganize)
        .exec(args.exec)
        .overlap(args.overlap)
        .cache(args.cache.clone())
        .infer()
        .build()
    {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };
    let mut session = match Session::new(
        &dataset,
        args.model,
        args.hidden,
        args.layers,
        args.chunks,
        config,
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("session construction failed: {e}");
            std::process::exit(1);
        }
    };
    if let Some(path) = &args.load {
        match hongtu_nn::load_model_file(path) {
            Ok(model) => session.set_model(model),
            Err(e) => {
                eprintln!("loading model failed: {e}");
                std::process::exit(1);
            }
        }
    }
    if args.deltas > 0 {
        let n = dataset.num_vertices();
        let subset = 8.min(n);
        let queries = args.serve.unwrap_or(0);
        let total = queries + args.deltas;
        let mut rng = SeededRng::new(args.seed ^ 0x7372_7665);
        let mut dg = DynamicGraph::from_dataset(&dataset);
        // Updates patch the host layer stores in place, so they must be
        // current before the first commit: one full priming sweep
        // (whose simulated time also calibrates the arrival rate).
        let prime = match session.infer_epoch() {
            Ok(r) => r,
            Err(e) => {
                eprintln!("priming sweep failed: {e}");
                std::process::exit(1);
            }
        };
        let qps = if args.qps > 0.0 {
            args.qps
        } else {
            2.5 / prime.time.max(1e-12)
        };
        // Exactly `--deltas` updates at uniformly sampled queue
        // positions; toggle batches are generated — and therefore
        // valid — in FIFO commit order.
        let mut is_update = vec![false; total];
        for p in rng.sample_indices(total, args.deltas) {
            is_update[p] = true;
        }
        let mut batches = toggle_workload(
            dg.graph(),
            dg.features().cols(),
            args.deltas,
            2,
            args.delta_mix,
            &mut rng,
        )
        .into_iter();
        let mut t = 0.0f64;
        let workload: Vec<WorkItem> = (0..total)
            .map(|k| {
                t += -(1.0 - rng.uniform() as f64).ln() / qps;
                if is_update[k] {
                    WorkItem::Update(UpdateRequest {
                        id: k as u64,
                        deltas: batches.next().expect("one batch per update"),
                        arrival: t,
                    })
                } else {
                    WorkItem::Query(Request {
                        id: k as u64,
                        vertices: rng.sample_indices(n, subset),
                        arrival: t,
                    })
                }
            })
            .collect();
        let admission = AdmissionControl::from_session(&session);
        let stats = match run_mixed_open_loop(
            &mut session,
            &mut dg,
            admission,
            args.batch_window,
            workload,
        ) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("mixed serving failed: {e}");
                std::process::exit(1);
            }
        };
        println!(
            "served {}/{queries} queries, committed {}/{} updates (rejected {} / {}) \
             | query p50 {:.3} ms p99 {:.3} ms | update p50 {:.3} ms p99 {:.3} ms \
             | graph epoch {}",
            stats.served,
            stats.updates_committed,
            args.deltas,
            stats.rejected,
            stats.updates_rejected,
            stats.p50_latency * 1e3,
            stats.p99_latency * 1e3,
            stats.p50_update_latency * 1e3,
            stats.p99_update_latency * 1e3,
            dg.epoch(),
        );
        return;
    }
    if let Some(requests) = args.serve {
        let n = dataset.num_vertices();
        let subset = 8.min(n);
        let mut rng = SeededRng::new(args.seed ^ 0x7372_7665);
        let qps = if args.qps > 0.0 {
            args.qps
        } else {
            // Auto-calibrate to ~2.5 arrivals per sweep so batches form.
            let probe = match session.serve(&rng.sample_indices(n, subset)) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("probe serve failed: {e}");
                    std::process::exit(1);
                }
            };
            2.5 / probe.time.max(1e-12)
        };
        let workload = poisson_workload(n, requests, qps, subset, &mut rng);
        let admission = AdmissionControl::from_session(&session);
        let stats = match run_open_loop(&mut session, admission, args.batch_window, workload) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("serving failed: {e}");
                std::process::exit(1);
            }
        };
        println!(
            "served {} / rejected {} ({:.1}% reject) | p50 {:.3} ms | p99 {:.3} ms \
             | {:.1} q/s | batches {:?}",
            stats.served,
            stats.rejected,
            100.0 * stats.reject_rate,
            stats.p50_latency * 1e3,
            stats.p99_latency * 1e3,
            stats.queries_per_sec,
            stats.batch_hist
        );
        return;
    }
    let mut inferencer = session.inferencer();
    let mut last = None;
    for epoch in 1..=args.epochs.max(1) {
        match inferencer.epoch() {
            Ok(r) => {
                if !args.quiet {
                    println!(
                        "epoch {epoch:>3}: logits {:016x}  sim {:.3} ms",
                        logits_digest(&r.logits),
                        r.time * 1e3
                    );
                }
                last = Some(r);
            }
            Err(e) => {
                eprintln!("inference epoch {epoch} failed: {e}");
                std::process::exit(1);
            }
        }
    }
    let r = last.expect("at least one epoch runs");
    println!(
        "logits digest {:016x} | sim {:.3} ms | peak GPU {:.1} MB | peak host {:.1} MB",
        logits_digest(&r.logits),
        r.time * 1e3,
        r.peak_gpu_bytes as f64 / (1 << 20) as f64,
        r.peak_host_bytes as f64 / (1 << 20) as f64
    );
    if let Some(rt) = inferencer.session().cache() {
        println!(
            "cache: {} hits / {} scheduled loads ({:.0}% hit rate)",
            rt.total_hits(),
            rt.total_loads(),
            100.0 * rt.hit_rate()
        );
    }
}
