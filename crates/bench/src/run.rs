//! Helpers for running the HongTu engine inside experiment binaries.

use crate::config::ExperimentConfig as C;
use hongtu_core::{CommMode, EpochReport, HongTuConfig, HongTuEngine};
use hongtu_datasets::Dataset;
use hongtu_nn::ModelKind;
use hongtu_sim::SimError;

/// Builds a full-featured HongTu engine for the standard experiment
/// configuration (`gpus` GPUs, paper-scaled chunk counts).
pub fn hongtu_engine(
    ds: &Dataset,
    kind: ModelKind,
    layers: usize,
    gpus: usize,
) -> Result<HongTuEngine, SimError> {
    hongtu_engine_with(ds, kind, layers, gpus, HongTuConfig::full(C::machine(gpus)))
}

/// Builds a HongTu engine with a custom configuration. The chunk count per
/// partition is scaled so the *total* number of subgraphs matches the
/// 4-GPU setting (keeping per-chunk memory constant when varying `gpus`).
pub fn hongtu_engine_with(
    ds: &Dataset,
    kind: ModelKind,
    layers: usize,
    gpus: usize,
    config: HongTuConfig,
) -> Result<HongTuEngine, SimError> {
    let n = (C::chunks(ds.key, kind) * 4).div_ceil(gpus).max(1);
    HongTuEngine::new(ds, kind, C::hidden(ds.key), layers, n, config)
}

/// One simulated-time epoch of full HongTu. Epoch time is deterministic
/// (the plan is fixed), so a single epoch is the per-epoch time.
pub fn hongtu_epoch(
    ds: &Dataset,
    kind: ModelKind,
    layers: usize,
    gpus: usize,
) -> Result<EpochReport, SimError> {
    hongtu_engine(ds, kind, layers, gpus)?.train_epoch()
}

/// One epoch with a specific comm/memory configuration.
pub fn hongtu_epoch_with(
    ds: &Dataset,
    kind: ModelKind,
    layers: usize,
    gpus: usize,
    comm: CommMode,
) -> Result<EpochReport, SimError> {
    let mut cfg = HongTuConfig::full(C::machine(gpus));
    cfg.comm = comm;
    cfg.reorganize = comm != CommMode::Vanilla;
    hongtu_engine_with(ds, kind, layers, gpus, cfg)?.train_epoch()
}
