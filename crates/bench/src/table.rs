//! Aligned plain-text table rendering for experiment output.

/// A simple column-aligned table builder.
#[derive(Debug, Default, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let mut cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with column alignment and a separator line.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].chars().count());
            }
        }
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(c, cell)| format!("{cell:<width$}", width = widths[c]))
                .collect::<Vec<_>>()
                .join("  ")
                .trim_end()
                .to_string()
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Renders and prints.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["a", "1"]);
        t.row(vec!["long-name", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a"));
        // 'value' column starts at the same offset in every line.
        let off = lines[0].find("value").unwrap();
        assert_eq!(&lines[3][off..off + 2], "22");
    }

    #[test]
    fn pads_short_rows() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.row(vec!["1"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        assert!(t.render().contains('1'));
    }
}
