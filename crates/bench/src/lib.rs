//! Shared infrastructure for the experiment binaries.
//!
//! One binary per table/figure of the paper lives in `src/bin/`; each
//! prints the same rows/series the paper reports, using the scaled-down
//! dataset proxies and the simulated platform. `config` centralizes the
//! scaled experiment constants; `table` renders aligned text tables.

#![forbid(unsafe_code)]

pub mod config;
pub mod harness;
pub mod run;
pub mod table;

pub use config::ExperimentConfig;
pub use table::Table;

use hongtu_datasets::{load, Dataset, DatasetKey};
use hongtu_sim::SimError;
use hongtu_tensor::SeededRng;

/// Master seed for every experiment (printed by each binary).
pub const SEED: u64 = 20230246; // HongTu is article 246 of PACMMOD 1(4)

/// Loads (and caches nothing — generation is fast and deterministic) a
/// dataset proxy from the master seed.
pub fn dataset(key: DatasetKey) -> Dataset {
    load(key, &mut SeededRng::new(SEED))
}

/// Formats a runtime cell: seconds with 3–4 significant digits, or "OOM".
pub fn time_cell(r: &Result<f64, SimError>) -> String {
    match r {
        Ok(t) => format_seconds(*t),
        Err(SimError::OutOfMemory { .. }) => "OOM".to_string(),
        Err(e) => format!("ERR({e})"),
    }
}

/// Human-readable seconds.
pub fn format_seconds(t: f64) -> String {
    if t >= 100.0 {
        format!("{t:.0}")
    } else if t >= 1.0 {
        format!("{t:.2}")
    } else if t >= 1e-3 {
        format!("{:.3}ms", t * 1e3).replace(".000ms", "ms")
    } else {
        format!("{:.1}us", t * 1e6)
    }
}

/// Human-readable bytes.
pub fn format_bytes(b: usize) -> String {
    const UNITS: [&str; 5] = ["B", "KB", "MB", "GB", "TB"];
    let mut v = b as f64;
    let mut u = 0;
    while v >= 1024.0 && u < UNITS.len() - 1 {
        v /= 1024.0;
        u += 1;
    }
    if u == 0 {
        format!("{b}B")
    } else {
        format!("{v:.1}{}", UNITS[u])
    }
}

/// Speedup cell `(12.3x)`.
pub fn speedup(base: f64, t: f64) -> String {
    format!("({:.1}x)", base / t)
}

/// Prints the standard experiment header.
pub fn header(what: &str, paper_ref: &str) {
    println!("================================================================");
    println!("{what}");
    println!("reproduces: {paper_ref}");
    println!("seed: {SEED}   (all runtimes are simulated-platform seconds)");
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_seconds_ranges() {
        assert_eq!(format_seconds(123.4), "123");
        assert_eq!(format_seconds(1.234), "1.23");
        assert!(format_seconds(0.012).ends_with("ms"));
        assert!(format_seconds(1e-5).ends_with("us"));
    }

    #[test]
    fn format_bytes_units() {
        assert_eq!(format_bytes(512), "512B");
        assert_eq!(format_bytes(2048), "2.0KB");
        assert_eq!(format_bytes(3 << 20), "3.0MB");
    }

    #[test]
    fn oom_cell() {
        let e: Result<f64, SimError> = Err(SimError::OutOfMemory {
            device: "x".into(),
            label: "y".into(),
            requested: 1,
            in_use: 0,
            capacity: 0,
        });
        assert_eq!(time_cell(&e), "OOM");
        assert_eq!(time_cell(&Ok(2.0)), "2.00");
    }

    #[test]
    fn speedup_format() {
        assert_eq!(speedup(10.0, 2.0), "(5.0x)");
    }
}
