//! Shared scaffolding for the `bench_*` CI gate binaries.
//!
//! Every gate bin used to hand-roll the same four pieces: a tiny
//! `--out/--epochs/--dataset` argv loop, the model × comm × GPU sweep
//! constants, a string-built JSON report, and a "print FAIL lines, exit
//! 1" gate accumulator. This module is the single home for all four, so
//! a new gate bin ([`bench_cache`] being the first) is only its sweep
//! loop and its gate conditions.

use hongtu_core::cli::parse_dataset;
use hongtu_core::CommMode;
use hongtu_datasets::DatasetKey;
use hongtu_nn::ModelKind;
use hongtu_sim::MachineConfig;

/// The three models every gate bin sweeps, with their report names.
pub const MODELS: [(ModelKind, &str); 3] = [
    (ModelKind::Gcn, "gcn"),
    (ModelKind::Gat, "gat"),
    (ModelKind::Sage, "sage"),
];

/// The GPU counts every gate bin sweeps.
pub const GPU_COUNTS: [usize; 3] = [1, 2, 4];

/// The communication modes, vanilla first.
pub const COMM_MODES: [CommMode; 3] = [CommMode::Vanilla, CommMode::P2p, CommMode::P2pRu];

/// Report name of a communication mode.
pub fn comm_name(c: CommMode) -> &'static str {
    match c {
        CommMode::Vanilla => "vanilla",
        CommMode::P2p => "p2p",
        CommMode::P2pRu => "p2pru",
    }
}

/// The scaled bench machine: `gpus` GPUs of 512 MB — large enough that
/// every sweep configuration fits, small enough that memory gates bind.
pub fn scaled_machine(gpus: usize) -> MachineConfig {
    MachineConfig::scaled(gpus, 512 << 20)
}

/// The common `--out FILE --epochs N --dataset KEY` argv of the gate
/// bins. Unknown flags and missing values print usage and exit 2, the
/// convention every bin already followed.
pub struct BenchCli {
    pub out: String,
    pub epochs: usize,
    pub dataset: DatasetKey,
}

impl BenchCli {
    /// Parses `std::env::args()`. `bin` is the usage-line name;
    /// `default_out` the report path when `--out` is absent.
    pub fn parse(bin: &str, default_out: &str, default_epochs: usize) -> Self {
        let usage = || -> ! {
            eprintln!("usage: {bin} [--out FILE] [--epochs N] [--dataset rdt|opt|it|opr|fds]");
            std::process::exit(2);
        };
        let mut cli = BenchCli {
            out: default_out.to_string(),
            epochs: default_epochs,
            dataset: DatasetKey::Rdt,
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let Some(value) = it.next() else { usage() };
            match flag.as_str() {
                "--out" => cli.out = value,
                "--epochs" => {
                    cli.epochs = value.parse().unwrap_or_else(|e| {
                        eprintln!("--epochs: {e}");
                        usage()
                    })
                }
                "--dataset" => {
                    cli.dataset = parse_dataset(&value).unwrap_or_else(|e| {
                        eprintln!("{e}");
                        usage()
                    })
                }
                other => {
                    eprintln!("unknown flag {other:?}");
                    usage()
                }
            }
        }
        cli
    }
}

/// One `{...}` object of the report's `samples` array: insertion-ordered
/// keys, values pre-rendered by the typed push methods.
#[derive(Default)]
pub struct JsonRow {
    fields: Vec<(String, String)>,
}

impl JsonRow {
    pub fn new() -> Self {
        Self::default()
    }

    fn push(mut self, key: &str, rendered: String) -> Self {
        self.fields.push((key.to_string(), rendered));
        self
    }

    pub fn str(self, key: &str, v: &str) -> Self {
        self.push(key, format!("\"{v}\""))
    }

    /// Seconds and other small reals: 9 decimal places, the precision
    /// the pre-harness bins used.
    pub fn f64(self, key: &str, v: f64) -> Self {
        self.push(key, format!("{v:.9}"))
    }

    /// Ratios (speedups, fractions, rates): 4 decimal places.
    pub fn ratio(self, key: &str, v: f64) -> Self {
        self.push(key, format!("{v:.4}"))
    }

    pub fn int(self, key: &str, v: u64) -> Self {
        self.push(key, format!("{v}"))
    }

    pub fn bool(self, key: &str, v: bool) -> Self {
        self.push(key, format!("{v}"))
    }

    /// 64-bit digests, rendered as the 16-hex-digit string the CLIs
    /// print.
    pub fn hex(self, key: &str, v: u64) -> Self {
        self.push(key, format!("\"{v:016x}\""))
    }

    fn render(&self) -> String {
        let body: Vec<String> = self
            .fields
            .iter()
            .map(|(k, v)| format!("\"{k}\": {v}"))
            .collect();
        format!("{{{}}}", body.join(", "))
    }
}

/// The whole report: scalar header fields plus the `samples` array.
#[derive(Default)]
pub struct JsonReport {
    header: Vec<(String, String)>,
    samples: Vec<JsonRow>,
}

impl JsonReport {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn str(mut self, key: &str, v: &str) -> Self {
        self.header.push((key.to_string(), format!("\"{v}\"")));
        self
    }

    pub fn int(mut self, key: &str, v: u64) -> Self {
        self.header.push((key.to_string(), format!("{v}")));
        self
    }

    pub fn sample(&mut self, row: JsonRow) {
        self.samples.push(row);
    }

    pub fn render(&self) -> String {
        let mut json = String::from("{\n");
        for (k, v) in &self.header {
            json.push_str(&format!("  \"{k}\": {v},\n"));
        }
        json.push_str("  \"samples\": [\n");
        for (i, s) in self.samples.iter().enumerate() {
            let sep = if i + 1 < self.samples.len() { "," } else { "" };
            json.push_str(&format!("    {}{sep}\n", s.render()));
        }
        json.push_str("  ]\n}\n");
        json
    }

    /// Writes the report and prints the `wrote FILE` line CI greps for.
    pub fn write(&self, path: &str) {
        std::fs::write(path, self.render()).expect("writing report");
        println!("wrote {path}");
    }
}

/// Accumulates gate violations; the process exits 1 iff any fired.
#[derive(Default)]
pub struct Gate {
    bad: bool,
}

impl Gate {
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a violation and prints the `FAIL:` line CI surfaces.
    pub fn fail(&mut self, msg: &str) {
        eprintln!("FAIL: {msg}");
        self.bad = true;
    }

    /// Asserts a gate condition.
    pub fn check(&mut self, ok: bool, msg: &str) {
        if !ok {
            self.fail(msg);
        }
    }

    pub fn is_bad(&self) -> bool {
        self.bad
    }

    /// Exits 1 if any gate fired; otherwise returns.
    pub fn finish(self) {
        if self.bad {
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_report_renders_valid_shape() {
        let mut rep = JsonReport::new().str("dataset", "rdt").int("epochs", 2);
        rep.sample(
            JsonRow::new()
                .str("model", "gcn")
                .int("gpus", 4)
                .f64("epoch_s", 0.25)
                .ratio("speedup", 1.5)
                .bool("equal", true)
                .hex("digest", 0xdead_beef),
        );
        let json = rep.render();
        assert!(json.starts_with("{\n  \"dataset\": \"rdt\",\n  \"epochs\": 2,\n"));
        assert!(json.contains("\"model\": \"gcn\", \"gpus\": 4, \"epoch_s\": 0.250000000"));
        assert!(json.contains("\"speedup\": 1.5000, \"equal\": true"));
        assert!(json.contains("\"digest\": \"00000000deadbeef\""));
        assert!(json.ends_with("  ]\n}\n"));
        // Balanced braces/brackets — the cheap well-formedness check.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn gate_accumulates() {
        let mut g = Gate::new();
        assert!(!g.is_bad());
        g.check(true, "fine");
        assert!(!g.is_bad());
        g.check(false, "broken");
        assert!(g.is_bad());
    }

    #[test]
    fn sweep_constants_cover_the_matrix() {
        assert_eq!(MODELS.len(), 3);
        assert_eq!(GPU_COUNTS, [1, 2, 4]);
        assert_eq!(comm_name(COMM_MODES[2]), "p2pru");
    }
}
