//! Scaled experiment constants.
//!
//! The paper's testbed is 4×A100-80GB plus CPU comparators (one 768 GB
//! server; a 16×512 GB ECS cluster). Dataset proxies are ~500–1000×
//! smaller than the originals, so device capacities are scaled by the same
//! factor while all bandwidth/throughput *ratios* stay at full-scale
//! values (see `MachineConfig::scaled`). The capacities below were chosen
//! so that the fits/OOM pattern of Tables 5–7 matches the paper:
//! in-memory GPU systems hold the small graphs at every depth but none of
//! the large ones; the CPU cluster holds GCN but not deep-GAT
//! intermediates.

use hongtu_datasets::DatasetKey;
use hongtu_nn::ModelKind;
use hongtu_sim::{CpuClusterConfig, MachineConfig};

/// Central accessor for the scaled constants.
pub struct ExperimentConfig;

impl ExperimentConfig {
    /// Scaled per-GPU memory (stands in for the A100's 80 GB).
    pub const GPU_MEM: usize = 34 << 20;

    /// The simulated multi-GPU machine with `gpus` GPUs.
    pub fn machine(gpus: usize) -> MachineConfig {
        MachineConfig::scaled(gpus, Self::GPU_MEM)
    }

    /// Hidden dimension (paper: 256 small / 128 large; scaled uniformly).
    pub fn hidden(_key: DatasetKey) -> usize {
        32
    }

    /// Chunks per partition, scaled from §7.1 ("partitions of it-2004,
    /// ogbn-paper and friendster are divided into 8, 32 and 32 (resp. 16,
    /// 64, 64) chunks in GCN (resp. GAT) training"; small graphs are not
    /// additionally split).
    pub fn chunks(key: DatasetKey, kind: ModelKind) -> usize {
        let gcn_chunks = match key {
            DatasetKey::Rdt | DatasetKey::Opt => 1,
            DatasetKey::It => 8,
            DatasetKey::Opr | DatasetKey::Fds => 32,
        };
        if kind == ModelKind::Gat {
            (gcn_chunks * 2).clamp(1, 64)
        } else {
            gcn_chunks
        }
    }

    /// DistDGL batch size (paper: 1024; scaled with the proxies).
    pub fn minibatch_size() -> usize {
        64
    }

    /// The single CPU server (scaled from 2×Xeon, 768 GB).
    pub fn cpu_single() -> CpuClusterConfig {
        CpuClusterConfig::scaled(1, Self::GPU_MEM * 768 / 80)
    }

    /// The 16-node ECS cluster (scaled from 16 × 512 GB, 20 Gbps). The
    /// node capacity is scaled slightly tighter than the raw 512:80 ratio
    /// to absorb DistGNN's bookkeeping overhead that our footprint model
    /// does not itemize.
    pub fn cpu_cluster() -> CpuClusterConfig {
        CpuClusterConfig::scaled(16, 100 << 20)
    }

    /// Layer counts used for a dataset in the multi-system tables
    /// (Table 5/6 use 2/4/8 on small graphs; Tables 6/7 use 2/3/4 on the
    /// large ones).
    pub fn layer_sweep(key: DatasetKey) -> [usize; 3] {
        if key.is_small() {
            [2, 4, 8]
        } else {
            [2, 3, 4]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_uses_scaled_memory() {
        let m = ExperimentConfig::machine(4);
        assert_eq!(m.num_gpus, 4);
        assert_eq!(m.gpu_memory, ExperimentConfig::GPU_MEM);
    }

    #[test]
    fn chunk_counts_follow_paper_ratios() {
        use DatasetKey::*;
        assert_eq!(ExperimentConfig::chunks(Rdt, ModelKind::Gcn), 1);
        assert_eq!(ExperimentConfig::chunks(It, ModelKind::Gcn), 8);
        assert_eq!(ExperimentConfig::chunks(It, ModelKind::Gat), 16);
        assert_eq!(ExperimentConfig::chunks(Fds, ModelKind::Gcn), 32);
        assert_eq!(ExperimentConfig::chunks(Fds, ModelKind::Gat), 64);
    }

    #[test]
    fn cpu_cluster_matches_paper_shape() {
        assert_eq!(ExperimentConfig::cpu_cluster().num_nodes, 16);
        assert_eq!(ExperimentConfig::cpu_single().num_nodes, 1);
        // Nodes are bigger than a GPU but not unboundedly so.
        let node = ExperimentConfig::cpu_cluster().node_memory;
        assert!(node > ExperimentConfig::GPU_MEM);
        assert!(node < ExperimentConfig::GPU_MEM * 16);
    }

    #[test]
    fn layer_sweeps() {
        assert_eq!(ExperimentConfig::layer_sweep(DatasetKey::Rdt), [2, 4, 8]);
        assert_eq!(ExperimentConfig::layer_sweep(DatasetKey::Opr), [2, 3, 4]);
    }
}
