//! Benchmarks of the communication-deduplication planner (Algorithm 2/3
//! metadata) and the reorganization heuristic (Algorithm 4) — the
//! preprocessing whose cost Table 9 bounds at ≤1.5% of a 100-epoch run.

use criterion::{criterion_group, criterion_main, Criterion};
use hongtu_core::{reorganize, DedupPlan};
use hongtu_partition::TwoLevelPartition;
use hongtu_tensor::SeededRng;
use std::hint::black_box;

fn plan(n_chunks: usize) -> TwoLevelPartition {
    let mut rng = SeededRng::new(4);
    let g = hongtu_graph::generators::rmat(
        14,
        160_000,
        hongtu_graph::generators::RmatParams::social(),
        &mut rng,
    );
    TwoLevelPartition::build(&g, 4, n_chunks, 1)
}

fn bench_dedup_plan(c: &mut Criterion) {
    let p8 = plan(8);
    let p32 = plan(32);
    c.bench_function("dedup_plan/16k-4x8", |b| {
        b.iter(|| black_box(DedupPlan::build(&p8)))
    });
    c.bench_function("dedup_plan/16k-4x32", |b| {
        b.iter(|| black_box(DedupPlan::build(&p32)))
    });
}

fn bench_reorganize(c: &mut Criterion) {
    let p = plan(16);
    c.bench_function("reorganize/16k-4x16", |b| {
        b.iter(|| black_box(reorganize(p.clone())))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_dedup_plan, bench_reorganize
}
criterion_main!(benches);
