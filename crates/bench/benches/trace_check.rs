//! Throughput benchmark of the happens-before schedule checker: events
//! certified per second, on a real engine trace and on a synthetic
//! many-GPU trace that stresses the vector-clock join.

use criterion::{criterion_group, criterion_main, Criterion};
use hongtu_core::{HongTuConfig, HongTuEngine};
use hongtu_datasets::{load, DatasetKey};
use hongtu_nn::ModelKind;
use hongtu_sim::{
    Access, BarrierScope, Device, Event, EventKind, MachineConfig, Region, ResourceId, Trace,
};
use hongtu_tensor::SeededRng;
use hongtu_verify::verify_trace;
use std::hint::black_box;

/// One recorded training epoch on the reddit proxy.
fn engine_trace() -> Trace {
    let ds = load(DatasetKey::Rdt, &mut SeededRng::new(1));
    let machine = MachineConfig::scaled(4, 512 << 20);
    let mut engine =
        HongTuEngine::new(&ds, ModelKind::Gcn, 32, 2, 4, HongTuConfig::full(machine)).unwrap();
    engine.machine_mut().enable_unbounded_trace();
    engine.train_epoch().unwrap();
    engine.machine().trace().clone()
}

/// A synthetic barrier-heavy schedule: `gpus` entities, `batches` batch
/// segments, each with a load, a cross-GPU pull, and a compute per GPU.
fn synthetic_trace(gpus: u32, batches: u32) -> Trace {
    let mut t = Trace::unbounded();
    for b in 0..batches {
        for g in 0..gpus {
            let rep = ResourceId::DevRep { gpu: g };
            t.record(
                Event::new(EventKind::H2D, Device::Gpu(g), 1 << 20, 1e-4, 0.0)
                    .with_accesses(vec![Access::write(rep, Region::Owned).with_gen(b)]),
            );
        }
        t.record(Event::new(
            EventKind::Barrier(BarrierScope::Phase),
            Device::Host,
            0,
            0.0,
            0.0,
        ));
        for g in 0..gpus {
            let src = ResourceId::DevRep {
                gpu: (g + 1) % gpus,
            };
            let dst = ResourceId::DevRep { gpu: g };
            t.record(
                Event::new(EventKind::D2D, Device::Gpu(g), 1 << 18, 1e-5, 0.0).with_accesses(vec![
                    Access::read(src, Region::Owned).with_gen(b),
                    Access::write(dst, Region::Fetched).with_gen(b),
                ]),
            );
            t.record(
                Event::new(EventKind::GpuCompute, Device::Gpu(g), 0, 1e-4, 0.0)
                    .with_accesses(vec![Access::read(dst, Region::All)]),
            );
        }
        t.record(Event::new(
            EventKind::Barrier(BarrierScope::Batch),
            Device::Host,
            0,
            0.0,
            0.0,
        ));
    }
    t
}

/// The vendored criterion reports time per iteration only; print the
/// headline events/sec figure alongside it.
fn events_per_sec(name: &str, trace: &Trace) {
    let iters = 50;
    let start = std::time::Instant::now();
    for _ in 0..iters {
        black_box(verify_trace(trace).is_ok());
    }
    let per_iter = start.elapsed().as_secs_f64() / iters as f64;
    eprintln!(
        "{name}: {} events, {:.1}M events/sec",
        trace.len(),
        trace.len() as f64 / per_iter / 1e6
    );
}

fn bench_checker(c: &mut Criterion) {
    let mut group = c.benchmark_group("verify_trace");

    let engine = engine_trace();
    assert!(verify_trace(&engine).is_ok());
    events_per_sec("engine-epoch/rdt-gcn2", &engine);
    group.bench_function("engine-epoch/rdt-gcn2", |b| {
        b.iter(|| black_box(verify_trace(&engine).is_ok()))
    });

    for gpus in [4u32, 16] {
        let t = synthetic_trace(gpus, 64);
        assert!(verify_trace(&t).is_ok());
        let name = format!("synthetic/{gpus}gpu-64batch");
        events_per_sec(&name, &t);
        group.bench_function(name, |b| b.iter(|| black_box(verify_trace(&t).is_ok())));
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_checker
}
criterion_main!(benches);
