//! Benchmarks of the partitioning substrate: the multilevel (METIS-like)
//! partitioner, the baselines, and the full 2-level plan construction.

use criterion::{criterion_group, criterion_main, Criterion};
use hongtu_graph::Graph;
use hongtu_partition::{multilevel::metis_like, simple::hash_partition, TwoLevelPartition};
use hongtu_tensor::SeededRng;
use std::hint::black_box;

fn graph(n: usize, deg: f64) -> Graph {
    let mut rng = SeededRng::new(2);
    hongtu_graph::generators::web_hybrid(n, deg, 0.9, 50.0, &mut rng)
}

fn bench_partitioners(c: &mut Criterion) {
    let g = graph(20_000, 8.0);
    c.bench_function("multilevel/20k-4parts", |b| {
        b.iter(|| black_box(metis_like(&g, 4, 1)))
    });
    c.bench_function("multilevel/20k-64parts", |b| {
        b.iter(|| black_box(metis_like(&g, 64, 1)))
    });
    c.bench_function("hash/20k-64parts", |b| {
        b.iter(|| black_box(hash_partition(g.num_vertices(), 64)))
    });
}

fn bench_two_level(c: &mut Criterion) {
    let g = graph(20_000, 8.0);
    c.bench_function("two_level_build/20k-4x8", |b| {
        b.iter(|| black_box(TwoLevelPartition::build(&g, 4, 8, 1)))
    });
    c.bench_function("two_level_build/20k-4x32", |b| {
        b.iter(|| black_box(TwoLevelPartition::build(&g, 4, 32, 1)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_partitioners, bench_two_level
}
criterion_main!(benches);
