//! Microbenchmarks of the dense and sparse kernels underlying every epoch:
//! parallel matmul, chunk aggregation (GCN forward), GAT attention, and
//! row gather/scatter.

use criterion::{criterion_group, criterion_main, Criterion};
use hongtu_graph::generators;
use hongtu_nn::{GnnLayer, LayerGrads};
use hongtu_partition::ChunkSubgraph;
use hongtu_tensor::{Matrix, SeededRng};
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for &(n, k, m) in &[(1024usize, 64usize, 64usize), (4096, 32, 32)] {
        let a = Matrix::from_fn(n, k, |r, q| ((r + q) as f32 * 0.01).sin());
        let b = Matrix::from_fn(k, m, |r, q| ((r * q) as f32 * 0.02).cos());
        group.bench_function(format!("{n}x{k}x{m}"), |bench| {
            bench.iter(|| black_box(a.matmul(&b)))
        });
    }
    group.finish();
}

fn bench_gather_scatter(c: &mut Criterion) {
    let src = Matrix::from_fn(10_000, 32, |r, q| (r * 32 + q) as f32);
    let mut rng = SeededRng::new(5);
    let idx: Vec<usize> = (0..20_000).map(|_| rng.index(10_000)).collect();
    c.bench_function("gather_rows/20k-of-10k-x32", |b| {
        b.iter(|| black_box(src.gather_rows(&idx)))
    });
    let upd = src.gather_rows(&idx);
    c.bench_function("scatter_add_rows/20k-x32", |b| {
        b.iter(|| {
            let mut acc = Matrix::zeros(10_000, 32);
            acc.scatter_add_rows(&idx, &upd);
            black_box(acc)
        })
    });
}

fn layer_chunk() -> (ChunkSubgraph, Matrix) {
    let mut rng = SeededRng::new(9);
    let g = generators::erdos_renyi(4000, 10.0, &mut rng);
    let g = hongtu_datasets::dataset::with_self_loops(&g);
    let chunk = ChunkSubgraph::build(&g, 0, 0, (0..4000).collect());
    let h = Matrix::from_fn(chunk.num_neighbors(), 32, |r, q| {
        ((r + 3 * q) as f32 * 0.01).sin()
    });
    (chunk, h)
}

fn bench_layers(c: &mut Criterion) {
    let (chunk, h) = layer_chunk();
    let mut rng = SeededRng::new(1);
    let gcn = hongtu_nn::GcnLayer::new(32, 32, &mut rng);
    let gat = hongtu_nn::GatLayer::new(32, 32, &mut rng);
    c.bench_function("gcn_forward/4k-40k", |b| {
        b.iter(|| black_box(gcn.forward(&chunk, &h)))
    });
    c.bench_function("gat_forward/4k-40k", |b| {
        b.iter(|| black_box(gat.forward(&chunk, &h)))
    });
    let grad = Matrix::from_fn(chunk.num_dests(), 32, |r, q| ((r + q) as f32 * 0.005).cos());
    c.bench_function("gcn_backward/4k-40k", |b| {
        b.iter(|| {
            let mut grads = LayerGrads::zeros_for(&gcn);
            black_box(gcn.backward_from_input(&chunk, &h, &grad, &mut grads))
        })
    });
    c.bench_function("gat_backward/4k-40k", |b| {
        b.iter(|| {
            let mut grads = LayerGrads::zeros_for(&gat);
            black_box(gat.backward_from_input(&chunk, &h, &grad, &mut grads))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_matmul, bench_gather_scatter, bench_layers
}
criterion_main!(benches);
