//! Wall-clock benchmark of a full HongTu training epoch (real numerics +
//! simulator accounting) on the reddit proxy — the end-to-end hot path.

use criterion::{criterion_group, criterion_main, Criterion};
use hongtu_core::{CommMode, HongTuConfig, HongTuEngine};
use hongtu_datasets::{load, DatasetKey};
use hongtu_nn::ModelKind;
use hongtu_sim::MachineConfig;
use hongtu_tensor::SeededRng;
use std::hint::black_box;

fn bench_epoch(c: &mut Criterion) {
    let ds = load(DatasetKey::Rdt, &mut SeededRng::new(1));
    let machine = MachineConfig::scaled(4, 512 << 20);
    for (name, comm) in [("dedup", CommMode::P2pRu), ("vanilla", CommMode::Vanilla)] {
        let mut cfg = HongTuConfig::full(machine.clone());
        cfg.comm = comm;
        cfg.reorganize = comm != CommMode::Vanilla;
        let mut engine = HongTuEngine::new(&ds, ModelKind::Gcn, 32, 2, 4, cfg).unwrap();
        c.bench_function(format!("hongtu_epoch/rdt-gcn2-{name}"), |b| {
            b.iter(|| black_box(engine.train_epoch().unwrap().loss.loss))
        });
    }
    // GAT epoch (recompute path).
    let mut engine =
        HongTuEngine::new(&ds, ModelKind::Gat, 32, 2, 4, HongTuConfig::full(machine)).unwrap();
    c.bench_function("hongtu_epoch/rdt-gat2-dedup", |b| {
        b.iter(|| black_box(engine.train_epoch().unwrap().loss.loss))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_epoch
}
criterion_main!(benches);
