//! Offline stand-in for the `criterion` crate.
//!
//! This workspace must build with **no registry access**, so the real
//! criterion cannot be a dependency. This crate implements the subset of
//! its API that the workspace's benches use — `Criterion::bench_function`,
//! `benchmark_group`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros — as a plain wall-clock harness.
//!
//! Differences from the real crate, by design: no warm-up phase tuning, no
//! statistical analysis or outlier detection, no plots, no baseline
//! comparison. Each benchmark runs `sample_size` samples of an adaptively
//! chosen iteration count and reports min / median / max per-iteration
//! times to stdout.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Entry point handed to each benchmark function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name.as_ref(), self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
        }
    }
}

/// A named collection of benchmarks; names are prefixed `group/bench`.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, name: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.as_ref());
        run_bench(&full, self.parent.sample_size, f);
        self
    }

    /// Ends the group. (No analysis to flush in this harness.)
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code
/// under measurement.
pub struct Bencher {
    /// Iterations to run in this sample.
    iters: u64,
    /// Total elapsed time measured by `iter`.
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` runs of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    // Calibration: grow the iteration count until one sample takes a
    // measurable amount of time (or the routine is clearly slow).
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(5) || iters >= 1 << 20 {
            break;
        }
        iters *= 2;
    }

    let mut per_iter: Vec<f64> = (0..sample_size)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_secs_f64() / iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    println!(
        "{name:<40} time: [{} {} {}]  ({iters} iters x {sample_size} samples)",
        fmt_time(per_iter[0]),
        fmt_time(median),
        fmt_time(per_iter[per_iter.len() - 1]),
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.4} s")
    } else if secs >= 1e-3 {
        format!("{:.4} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.4} us", secs * 1e6)
    } else {
        format!("{:.4} ns", secs * 1e9)
    }
}

/// Declares a benchmark group. Both the flat and the struct-like forms of
/// the real macro are accepted.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main`, running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut calls = 0u64;
        let mut c = Criterion::default().sample_size(2);
        c.bench_function("counter", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }

    #[test]
    fn group_prefixes_and_finishes() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("grp");
        g.bench_function(String::from("inner"), |b| b.iter(|| 1 + 1));
        g.finish();
    }

    #[test]
    fn fmt_time_picks_unit() {
        assert!(fmt_time(2.0).ends_with(" s"));
        assert!(fmt_time(2e-3).ends_with(" ms"));
        assert!(fmt_time(2e-6).ends_with(" us"));
        assert!(fmt_time(2e-9).ends_with(" ns"));
    }
}
