//! Hot-vertex GPU feature caching (ROADMAP "Hot-vertex GPU caching").
//!
//! After `plan_staging` pins its slabs, each GPU is left with a known slice
//! of HBM headroom the static memory bound does not spend. This crate
//! spends *exactly* that headroom on a ranked cache of boundary-vertex
//! **layer-0 feature rows**: the rows every sweep must otherwise pull from
//! host memory over PCIe, again and again, across batches, epochs, and
//! serving queries.
//!
//! Only `h^0` rows are cached. Input features are immutable across epochs
//! (parameter updates touch `h^{l≥1}` every sweep, so caching those would
//! buy one sweep at best), and the delta subsystem patches `h^0` rows in
//! place — the one event that must invalidate cache entries, handled by
//! [`CacheRuntime::invalidate`]. This mirrors the static feature caches of
//! real distributed GNN systems (PaGraph, GNNLab, CaPGNN).
//!
//! The design splits cleanly into a *plan* and a *runtime*:
//!
//! * [`load_sets`] derives `S[i][j]` — the exact vertex set GPU `i` host-
//!   loads in batch `j` under each communication pattern (the dedup plan's
//!   `ℕ^cpu` schedule for deduplicated modes, raw chunk neighbors for
//!   vanilla).
//! * [`CachePlan::build`] ranks the candidate vertices with a pluggable
//!   [`CachePolicy`] (frequency across the load schedule, degree, or off)
//!   and admits the top slice that fits each GPU's headroom. Admission *is*
//!   the eviction policy: the resident set can only ever be a subset of the
//!   admitted set, so nothing is ever evicted at runtime for space.
//! * [`CacheRuntime`] tracks residency with **epoch-granular installs**:
//!   hits for a sweep are frozen against the resident set as it stood when
//!   the sweep began ([`CacheRuntime::begin_sweep`]), and rows loaded during
//!   the sweep are installed only at [`CacheRuntime::end_sweep`]. A sweep's
//!   hit table is therefore a pure function of the plans and the pre-sweep
//!   state — the executor needs no interior mutability, and a synthesized
//!   schedule is bitwise the schedule the executor runs.
//!
//! Every state transition is journaled in a [`CacheLog`] so the verifier's
//! pass 11 can replay it against independently recomputed load sets
//! (`H10xx` codes).

#![forbid(unsafe_code)]

use std::fmt;

use hongtu_graph::VertexId;
use hongtu_partition::{DedupPlan, GpuBufferPlan, TwoLevelPartition};

/// Which host-load schedule the executor follows — mirrors the engine's
/// communication mode without depending on it (the engine depends on this
/// crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadPattern {
    /// Every chunk loads its full neighbor set `N_ij` from the host.
    Vanilla,
    /// Deduplicated loads: GPU `i` loads its transition set `ℕ_ij`.
    P2p,
    /// Deduplicated loads with in-place reuse: GPU `i` loads only the
    /// incoming merged-buffer rows it owns (`ℕ^cpu`-equivalent).
    P2pRu,
}

/// Derives `S[i][j]`: the sorted vertex set GPU `i` host-loads in batch
/// `j`. `bufs` is required for [`LoadPattern::P2pRu`] (the incoming rows
/// are a property of the in-place buffer plan) and ignored otherwise.
///
/// The engine's pruned-predecessor fallback loads (overlap mode) and
/// hybrid checkpoint reloads are *not* part of any `S[i][j]`; those sites
/// bypass the cache by design.
pub fn load_sets(
    plan: &TwoLevelPartition,
    dedup: &DedupPlan,
    bufs: Option<&[GpuBufferPlan]>,
    pattern: LoadPattern,
) -> Vec<Vec<Vec<VertexId>>> {
    let (m, n) = (plan.m, plan.n);
    let mut sets = vec![vec![Vec::new(); n]; m];
    match pattern {
        LoadPattern::Vanilla => {
            for (i, row) in sets.iter_mut().enumerate() {
                for (j, s) in row.iter_mut().enumerate() {
                    *s = plan.chunks[i][j].neighbors.clone();
                }
            }
        }
        LoadPattern::P2p => {
            for (i, row) in sets.iter_mut().enumerate() {
                for (j, s) in row.iter_mut().enumerate() {
                    *s = dedup.batches[j].transition[i].clone();
                }
            }
        }
        LoadPattern::P2pRu => {
            let bufs = bufs.expect("P2pRu load sets need the GPU buffer plans");
            let owner = &plan.assignment.partition_of;
            for (i, row) in sets.iter_mut().enumerate() {
                for (j, s) in row.iter_mut().enumerate() {
                    let b = &bufs[i].batches[j];
                    let mut vs: Vec<VertexId> = b
                        .incoming
                        .iter()
                        .map(|&(t, _slot)| b.merged[t as usize])
                        .filter(|&v| owner[v as usize] as usize == i)
                        .collect();
                    vs.sort_unstable();
                    *s = vs;
                }
            }
        }
    }
    sets
}

/// One boundary vertex considered for caching on a GPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate {
    /// Global vertex id.
    pub vertex: VertexId,
    /// How many batches of the load schedule host-load this vertex.
    pub loads: u32,
    /// Out-degree (fan-out decides how many chunks need the row).
    pub degree: u32,
}

/// Ranks cache candidates; the top slice fitting headroom is admitted.
///
/// `Debug + Send + Sync` so a policy can live in the engine config (which
/// is `Clone` and crosses threads in the parallel executor).
pub trait CachePolicy: fmt::Debug + Send + Sync {
    /// Stable name (used by CLI flags, bench JSON, and the plan).
    fn name(&self) -> &'static str;
    /// False disables caching entirely.
    fn enabled(&self) -> bool {
        true
    }
    /// Reorders `candidates` best-first.
    fn rank(&self, candidates: &mut [Candidate]);
}

/// Ranks by access frequency over the `ℕ^cpu` load schedule, breaking
/// ties by degree then vertex id (determinism).
#[derive(Debug, Clone, Copy, Default)]
pub struct FrequencyRanked;

impl CachePolicy for FrequencyRanked {
    fn name(&self) -> &'static str {
        "freq"
    }
    fn rank(&self, candidates: &mut [Candidate]) {
        candidates.sort_unstable_by(|a, b| {
            b.loads
                .cmp(&a.loads)
                .then(b.degree.cmp(&a.degree))
                .then(a.vertex.cmp(&b.vertex))
        });
    }
}

/// Ranks by out-degree (the fallback signal when the load schedule is
/// uniform), breaking ties by load count then vertex id.
#[derive(Debug, Clone, Copy, Default)]
pub struct DegreeRanked;

impl CachePolicy for DegreeRanked {
    fn name(&self) -> &'static str {
        "degree"
    }
    fn rank(&self, candidates: &mut [Candidate]) {
        candidates.sort_unstable_by(|a, b| {
            b.degree
                .cmp(&a.degree)
                .then(b.loads.cmp(&a.loads))
                .then(a.vertex.cmp(&b.vertex))
        });
    }
}

/// Caching disabled: the plan admits nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct Off;

impl CachePolicy for Off {
    fn name(&self) -> &'static str {
        "off"
    }
    fn enabled(&self) -> bool {
        false
    }
    fn rank(&self, candidates: &mut [Candidate]) {
        let _ = candidates;
    }
}

/// The admitted cache for one GPU.
#[derive(Debug, Clone, Default)]
pub struct GpuCachePlan {
    /// GPU index.
    pub gpu: usize,
    /// Admitted vertices, sorted ascending.
    pub vertices: Vec<VertexId>,
    /// Bytes this cache pins (`vertices.len() × slot_bytes`).
    pub bytes: usize,
}

/// The full cache plan: per-GPU admitted sets plus provenance.
#[derive(Debug, Clone, Default)]
pub struct CachePlan {
    /// Name of the policy that ranked the admission.
    pub policy: &'static str,
    /// Bytes per cached row (layer-0 feature width × 4).
    pub slot_bytes: usize,
    /// One admitted set per GPU.
    pub per_gpu: Vec<GpuCachePlan>,
}

impl CachePlan {
    /// Ranks each GPU's host-load candidates with `policy` and admits the
    /// top slice whose rows fit `headroom[i]` bytes at `slot_bytes` per
    /// row. `degrees[v]` supplies the fallback ranking signal.
    pub fn build(
        sets: &[Vec<Vec<VertexId>>],
        degrees: &[u32],
        headroom: &[usize],
        slot_bytes: usize,
        policy: &dyn CachePolicy,
    ) -> CachePlan {
        let mut per_gpu = Vec::with_capacity(sets.len());
        for (i, batches) in sets.iter().enumerate() {
            let cap_rows = if slot_bytes == 0 || !policy.enabled() {
                0
            } else {
                headroom.get(i).copied().unwrap_or(0) / slot_bytes
            };
            let mut loads = std::collections::HashMap::<VertexId, u32>::new();
            for s in batches {
                for &v in s {
                    *loads.entry(v).or_insert(0) += 1;
                }
            }
            let mut cands: Vec<Candidate> = loads
                .into_iter()
                .map(|(vertex, loads)| Candidate {
                    vertex,
                    loads,
                    degree: degrees.get(vertex as usize).copied().unwrap_or(0),
                })
                .collect();
            // Pre-sort by id so the policy ranks a deterministic input.
            cands.sort_unstable_by_key(|c| c.vertex);
            policy.rank(&mut cands);
            cands.truncate(cap_rows);
            let mut vertices: Vec<VertexId> = cands.into_iter().map(|c| c.vertex).collect();
            vertices.sort_unstable();
            let bytes = vertices.len() * slot_bytes;
            per_gpu.push(GpuCachePlan {
                gpu: i,
                vertices,
                bytes,
            });
        }
        CachePlan {
            policy: policy.name(),
            slot_bytes,
            per_gpu,
        }
    }

    /// Total admitted rows across GPUs.
    pub fn total_rows(&self) -> usize {
        self.per_gpu.iter().map(|g| g.vertices.len()).sum()
    }

    /// True when no GPU admitted anything (policy off or zero headroom).
    pub fn is_empty(&self) -> bool {
        self.per_gpu.iter().all(|g| g.vertices.is_empty())
    }
}

/// Per-`(gpu, batch)` hit table entry, frozen for the current sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HitStats {
    /// Load-set rows already resident (skip the H2D charge).
    pub hits: usize,
    /// Hits whose host copy lives on a remote NUMA socket (vanilla mode's
    /// mixed-bandwidth split).
    pub remote_hits: usize,
    /// Loaded rows this batch that the plan admits (an install write will
    /// happen at sweep end).
    pub installs: usize,
}

/// One journaled cache state transition; pass 11 replays these.
#[derive(Debug, Clone)]
pub enum CacheEvent {
    /// One full (or cone-masked) layer-0 sweep: which batches executed,
    /// the frozen hit counts charged, and the rows installed at sweep end.
    Sweep {
        /// `executed[j]`: batch `j` ran its layer-0 host load.
        executed: Vec<bool>,
        /// `hits[i][j]` as charged (zero for non-executed batches).
        hits: Vec<Vec<usize>>,
        /// Rows newly resident on each GPU, sorted ascending.
        installs: Vec<Vec<VertexId>>,
    },
    /// A delta commit patched `h^0` rows: every resident copy inside the
    /// dirty set was dropped.
    Invalidate {
        /// Patched vertices, sorted ascending.
        dirty: Vec<VertexId>,
        /// `removed[i]`: rows dropped from GPU `i`, sorted ascending.
        removed: Vec<Vec<VertexId>>,
    },
}

/// Journal of every cache state transition since the runtime was built.
#[derive(Debug, Clone, Default)]
pub struct CacheLog {
    /// Events in program order.
    pub events: Vec<CacheEvent>,
}

/// Residency tracker the engine threads through its sweeps.
#[derive(Debug, Clone)]
pub struct CacheRuntime {
    plan: CachePlan,
    /// `S[i][j]`, sorted ascending.
    sets: Vec<Vec<Vec<VertexId>>>,
    /// `remote[i][v]`: host copy of `v` is NUMA-remote to GPU `i`
    /// (supplied by the engine for vanilla mode only).
    remote: Option<Vec<Vec<bool>>>,
    /// `planned[i][v]`: the plan admits `v` on GPU `i`.
    planned: Vec<Vec<bool>>,
    /// `resident[i][v]`: a valid copy of `h^0[v]` sits in GPU `i`'s cache.
    resident: Vec<Vec<bool>>,
    /// Frozen per-sweep table; empty outside a sweep.
    table: Vec<Vec<HitStats>>,
    log: CacheLog,
    total_hit_rows: usize,
    total_load_rows: usize,
}

impl CacheRuntime {
    /// Builds a runtime with an empty resident set. `num_vertices` sizes
    /// the residency bitmaps; `remote` is vanilla mode's per-GPU remote-
    /// socket map (length `num_vertices` each) or `None`.
    pub fn new(
        plan: CachePlan,
        sets: Vec<Vec<Vec<VertexId>>>,
        num_vertices: usize,
        remote: Option<Vec<Vec<bool>>>,
    ) -> CacheRuntime {
        let m = sets.len();
        let mut planned = vec![vec![false; num_vertices]; m];
        for (i, g) in plan.per_gpu.iter().enumerate() {
            for &v in &g.vertices {
                planned[i][v as usize] = true;
            }
        }
        CacheRuntime {
            plan,
            sets,
            remote,
            planned,
            resident: vec![vec![false; num_vertices]; m],
            table: Vec::new(),
            log: CacheLog::default(),
            total_hit_rows: 0,
            total_load_rows: 0,
        }
    }

    /// Freezes the hit table for the sweep that is about to run: hits are
    /// counted against the resident set *as of now*, so every charge the
    /// executor emits this sweep is a pure function of pre-sweep state.
    pub fn begin_sweep(&mut self) {
        let m = self.sets.len();
        let n = self.sets.first().map_or(0, Vec::len);
        let mut table = vec![vec![HitStats::default(); n]; m];
        for (i, batches) in self.sets.iter().enumerate() {
            for (j, s) in batches.iter().enumerate() {
                let mut st = HitStats::default();
                for &v in s {
                    let vi = v as usize;
                    if self.resident[i][vi] {
                        st.hits += 1;
                        if self.remote.as_ref().is_some_and(|r| r[i][vi]) {
                            st.remote_hits += 1;
                        }
                    } else if self.planned[i][vi] {
                        st.installs += 1;
                    }
                }
                table[i][j] = st;
            }
        }
        self.table = table;
    }

    /// Frozen stats for GPU `i`, batch `j` (zero outside a sweep).
    pub fn stats(&self, i: usize, j: usize) -> HitStats {
        self.table
            .get(i)
            .and_then(|r| r.get(j))
            .copied()
            .unwrap_or_default()
    }

    /// Commits the sweep: rows loaded by executed batches that the plan
    /// admits become resident, and the transition is journaled.
    pub fn end_sweep(&mut self, executed: &[bool]) {
        let m = self.sets.len();
        let n = self.sets.first().map_or(0, Vec::len);
        let mut installs = vec![Vec::new(); m];
        let mut hits = vec![vec![0usize; n]; m];
        for (i, batches) in self.sets.iter().enumerate() {
            for (j, s) in batches.iter().enumerate() {
                if !executed.get(j).copied().unwrap_or(false) {
                    continue;
                }
                let st = self
                    .table
                    .get(i)
                    .and_then(|r| r.get(j))
                    .copied()
                    .unwrap_or_default();
                hits[i][j] = st.hits;
                self.total_hit_rows += st.hits;
                self.total_load_rows += s.len();
                for &v in s {
                    let vi = v as usize;
                    if self.planned[i][vi] && !self.resident[i][vi] {
                        self.resident[i][vi] = true;
                        installs[i].push(v);
                    }
                }
            }
        }
        for g in &mut installs {
            g.sort_unstable();
        }
        self.table = Vec::new();
        self.log.events.push(CacheEvent::Sweep {
            executed: executed.to_vec(),
            hits,
            installs,
        });
    }

    /// Drops every resident copy of a patched vertex (delta commit) and
    /// journals exactly what was removed.
    pub fn invalidate(&mut self, dirty: &[VertexId]) {
        let mut dirty = dirty.to_vec();
        dirty.sort_unstable();
        dirty.dedup();
        let mut removed = vec![Vec::new(); self.resident.len()];
        for (i, res) in self.resident.iter_mut().enumerate() {
            for &v in &dirty {
                if let Some(slot) = res.get_mut(v as usize) {
                    if *slot {
                        *slot = false;
                        removed[i].push(v);
                    }
                }
            }
        }
        self.log
            .events
            .push(CacheEvent::Invalidate { dirty, removed });
    }

    /// The admitted plan.
    pub fn plan(&self) -> &CachePlan {
        &self.plan
    }

    /// The journal since this runtime was built.
    pub fn log(&self) -> &CacheLog {
        &self.log
    }

    /// Rows currently resident on GPU `i`.
    pub fn resident_rows(&self, i: usize) -> usize {
        self.resident[i].iter().filter(|&&r| r).count()
    }

    /// Cumulative hit rows across all committed sweeps.
    pub fn total_hits(&self) -> usize {
        self.total_hit_rows
    }

    /// Cumulative load-set rows across all committed sweeps.
    pub fn total_loads(&self) -> usize {
        self.total_load_rows
    }

    /// Fraction of scheduled host-load rows served by the cache so far.
    pub fn hit_rate(&self) -> f64 {
        if self.total_load_rows == 0 {
            0.0
        } else {
            self.total_hit_rows as f64 / self.total_load_rows as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_sets() -> Vec<Vec<Vec<VertexId>>> {
        // 2 GPUs × 2 batches. Vertex 5 loads twice on GPU 0; 9 once.
        vec![vec![vec![1, 5], vec![5, 9]], vec![vec![2, 3], vec![3, 7]]]
    }

    fn degrees() -> Vec<u32> {
        vec![0, 1, 2, 9, 0, 4, 0, 8, 0, 6]
    }

    #[test]
    fn frequency_ranking_prefers_hot_rows() {
        let sets = toy_sets();
        // Room for exactly one row per GPU.
        let plan = CachePlan::build(&sets, &degrees(), &[8, 8], 8, &FrequencyRanked);
        assert_eq!(plan.per_gpu[0].vertices, vec![5]); // 2 loads beats 1
        assert_eq!(plan.per_gpu[1].vertices, vec![3]); // 2 loads beats 1
        assert_eq!(plan.per_gpu[0].bytes, 8);
        assert_eq!(plan.policy, "freq");
    }

    #[test]
    fn degree_ranking_prefers_high_fanout() {
        let sets = toy_sets();
        let plan = CachePlan::build(&sets, &degrees(), &[16, 16], 8, &DegreeRanked);
        // GPU 0 candidates {1,5,9}: degree 6 (v9) then 4 (v5).
        assert_eq!(plan.per_gpu[0].vertices, vec![5, 9]);
        // GPU 1 candidates {2,3,7}: degree 9 (v3) then 8 (v7).
        assert_eq!(plan.per_gpu[1].vertices, vec![3, 7]);
    }

    #[test]
    fn off_policy_and_zero_headroom_admit_nothing() {
        let sets = toy_sets();
        assert!(CachePlan::build(&sets, &degrees(), &[64, 64], 8, &Off).is_empty());
        assert!(CachePlan::build(&sets, &degrees(), &[0, 0], 8, &FrequencyRanked).is_empty());
        assert!(CachePlan::build(&sets, &degrees(), &[64, 64], 0, &FrequencyRanked).is_empty());
    }

    #[test]
    fn second_sweep_hits_what_the_first_installed() {
        let sets = toy_sets();
        let plan = CachePlan::build(&sets, &degrees(), &[64, 64], 8, &FrequencyRanked);
        let mut rt = CacheRuntime::new(plan, sets, 10, None);

        rt.begin_sweep();
        assert_eq!(rt.stats(0, 0).hits, 0); // nothing resident yet
        assert!(rt.stats(0, 0).installs > 0);
        rt.end_sweep(&[true, true]);
        assert_eq!(rt.total_hits(), 0);
        assert_eq!(rt.resident_rows(0), 3); // {1,5,9} all fit

        rt.begin_sweep();
        assert_eq!(rt.stats(0, 0).hits, 2); // {1,5}
        assert_eq!(rt.stats(0, 1).hits, 2); // {5,9}
        assert_eq!(rt.stats(0, 0).installs, 0);
        rt.end_sweep(&[true, true]);
        assert!(rt.total_hits() > 0);
        assert!(rt.hit_rate() > 0.0);
        assert_eq!(rt.log().events.len(), 2);
    }

    #[test]
    fn masked_sweep_installs_only_executed_batches() {
        let sets = toy_sets();
        let plan = CachePlan::build(&sets, &degrees(), &[64, 64], 8, &FrequencyRanked);
        let mut rt = CacheRuntime::new(plan, sets, 10, None);
        rt.begin_sweep();
        rt.end_sweep(&[true, false]); // batch 1 skipped
        assert_eq!(rt.resident_rows(0), 2); // {1,5}; 9 never loaded
        match &rt.log().events[0] {
            CacheEvent::Sweep { hits, installs, .. } => {
                assert_eq!(hits[0][1], 0); // non-executed batch charges nothing
                assert_eq!(installs[0], vec![1, 5]);
            }
            other => panic!("expected sweep event, got {other:?}"),
        }
    }

    #[test]
    fn invalidate_drops_resident_rows_and_journals_them() {
        let sets = toy_sets();
        let plan = CachePlan::build(&sets, &degrees(), &[64, 64], 8, &FrequencyRanked);
        let mut rt = CacheRuntime::new(plan, sets, 10, None);
        rt.begin_sweep();
        rt.end_sweep(&[true, true]);
        assert_eq!(rt.resident_rows(0), 3);

        rt.invalidate(&[5, 8]);
        assert_eq!(rt.resident_rows(0), 2); // 5 dropped, 8 was never resident
        match rt.log().events.last().unwrap() {
            CacheEvent::Invalidate { removed, .. } => assert_eq!(removed[0], vec![5]),
            other => panic!("expected invalidate event, got {other:?}"),
        }

        // The dropped row misses (and reinstalls) on the next sweep.
        rt.begin_sweep();
        assert_eq!(rt.stats(0, 0).hits, 1); // only {1}
        assert_eq!(rt.stats(0, 0).installs, 1); // 5 comes back
        rt.end_sweep(&[true, true]);
        assert_eq!(rt.resident_rows(0), 3);
    }

    #[test]
    fn remote_hits_follow_the_socket_map() {
        let sets = toy_sets();
        let plan = CachePlan::build(&sets, &degrees(), &[64, 64], 8, &FrequencyRanked);
        let mut remote = vec![vec![false; 10]; 2];
        remote[0][5] = true;
        let mut rt = CacheRuntime::new(plan, sets, 10, Some(remote));
        rt.begin_sweep();
        rt.end_sweep(&[true, true]);
        rt.begin_sweep();
        assert_eq!(rt.stats(0, 0).hits, 2);
        assert_eq!(rt.stats(0, 0).remote_hits, 1); // vertex 5 is NUMA-remote
        rt.end_sweep(&[true, true]);
    }
}
