//! Property tests for cache admission: whatever the load schedule and
//! headroom, an admitted plan must fit every GPU and admit only vertices
//! the schedule actually loads.

use hongtu_cache::{CachePlan, CacheRuntime, DegreeRanked, FrequencyRanked};
use proptest::prelude::*;

const SLOT: usize = 16;

fn sets_from(raw: &[Vec<u32>], m: usize) -> Vec<Vec<Vec<u32>>> {
    // Distribute the generated batches round-robin over `m` GPUs and
    // normalize each to a sorted dedup'd load set.
    let mut sets = vec![Vec::new(); m];
    for (k, s) in raw.iter().enumerate() {
        let mut s = s.clone();
        s.sort_unstable();
        s.dedup();
        sets[k % m].push(s);
    }
    let n = sets.iter().map(Vec::len).max().unwrap_or(0);
    for g in &mut sets {
        g.resize(n, Vec::new());
    }
    sets
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn admitted_plan_fits_headroom_on_every_gpu(
        raw in proptest::collection::vec(
            proptest::collection::vec(0u32..200, 0..40), 1..12),
        headroom in proptest::collection::vec(0usize..1024, 4),
        degree_seed in 0u64..1000,
    ) {
        let m = 4usize;
        let sets = sets_from(&raw, m);
        let degrees: Vec<u32> = (0..200u64)
            .map(|v| ((v * 2654435761 + degree_seed) % 97) as u32)
            .collect();
        for policy in [&FrequencyRanked as &dyn hongtu_cache::CachePolicy, &DegreeRanked] {
            let plan = CachePlan::build(&sets, &degrees, &headroom, SLOT, policy);
            for (i, g) in plan.per_gpu.iter().enumerate() {
                // Fits headroom exactly as budgeted.
                prop_assert!(g.bytes <= headroom[i]);
                prop_assert_eq!(g.bytes, g.vertices.len() * SLOT);
                // Sorted, dedup'd, and drawn from the GPU's own schedule.
                prop_assert!(g.vertices.windows(2).all(|w| w[0] < w[1]));
                for &v in &g.vertices {
                    prop_assert!(sets[i].iter().any(|s| s.binary_search(&v).is_ok()));
                }
            }
            // Residency can never exceed the admitted plan.
            let mut rt = CacheRuntime::new(plan.clone(), sets.clone(), 200, None);
            let n = sets[0].len();
            for _ in 0..3 {
                rt.begin_sweep();
                rt.end_sweep(&vec![true; n]);
            }
            for (i, g) in plan.per_gpu.iter().enumerate() {
                prop_assert!(rt.resident_rows(i) <= g.vertices.len());
            }
        }
    }
}
