//! Dataset registry for HongTu experiments.
//!
//! The paper evaluates on five real graphs (Table 4): reddit,
//! ogbn-products, it-2004, ogbn-papers100M, and friendster. The three
//! large ones need 177–519 GB of vertex data — far past what can ship in a
//! test suite — so this crate generates **scaled-down synthetic proxies**
//! whose *structure* matches what drives HongTu's behaviour:
//!
//! | key | proxy of | generator | structural match |
//! |-----|----------|-----------|------------------|
//! | RDT | reddit | planted partition, dense | high average degree, label signal |
//! | OPT | ogbn-products | planted partition | co-purchasing communities |
//! | IT  | it-2004 | web hybrid (high locality + hubs) | crawl-ordered web graph, low α |
//! | OPR | ogbn-papers100M | local window | citation locality, α grows fast |
//! | FDS | friendster | R-MAT social | high-expansion social graph, worst α |
//!
//! Self-loops are added to every proxy (required by GAT/SAGE/GIN layers and
//! the usual GCN Â = A + I convention).
//!
//! [`memory_model`] reproduces the paper's Table 1 *analytically at full
//! paper scale* from the published |V|, |E| and model dimensions, since
//! materializing the real tensors is exactly what HongTu exists to avoid.

#![forbid(unsafe_code)]

pub mod dataset;
pub mod memory_model;
pub mod registry;

pub use dataset::{Dataset, DatasetKey, Splits};
pub use memory_model::{MemoryModel, PaperScale};
pub use registry::{all_keys, large_keys, load, small_keys};
