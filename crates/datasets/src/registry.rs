//! Construction of the five dataset proxies.
//!
//! Proxy sizes are ~1000× smaller than the originals; the simulator's
//! bandwidth/compute *ratios* are kept at full scale, so relative results
//! (who wins, by what factor, where OOM hits) are preserved while a full
//! benchmark run stays tractable on a laptop-class CPU.

use crate::dataset::{with_self_loops, Dataset, DatasetKey, Splits};
use hongtu_graph::generators::{self, RmatParams};
use hongtu_tensor::{Matrix, SeededRng};

/// All five dataset keys, in the paper's order.
pub fn all_keys() -> [DatasetKey; 5] {
    [
        DatasetKey::Rdt,
        DatasetKey::Opt,
        DatasetKey::It,
        DatasetKey::Opr,
        DatasetKey::Fds,
    ]
}

/// The two small (GPU-resident) datasets.
pub fn small_keys() -> [DatasetKey; 2] {
    [DatasetKey::Rdt, DatasetKey::Opt]
}

/// The three billion-scale (offloaded) datasets.
pub fn large_keys() -> [DatasetKey; 3] {
    [DatasetKey::It, DatasetKey::Opr, DatasetKey::Fds]
}

/// Generates dataset `key` from a master RNG (deterministic per seed).
pub fn load(key: DatasetKey, rng: &mut SeededRng) -> Dataset {
    let seed = rng.seed();
    match key {
        // reddit: 0.23M vertices, 114M edges (avg deg ~500), 602 features,
        // 41 labels, ~66% train split. Proxy: dense labelled community graph.
        DatasetKey::Rdt => labelled(
            key,
            3000,
            8,
            40.0,
            0.62,
            48,
            0.10,
            0.07,
            (0.66, 0.10),
            seed,
            rng,
        ),
        // ogbn-products: 2.4M vertices, 62M edges (avg deg ~26), 100
        // features, 47 labels, ~8% train split.
        DatasetKey::Opt => labelled(
            key,
            6000,
            8,
            22.0,
            0.55,
            24,
            0.18,
            0.0,
            (0.08, 0.02),
            seed,
            rng,
        ),
        // it-2004: 41M vertices, 1.2B edges, web crawl with strong id
        // locality and hub pages — lowest replication factor of the three.
        DatasetKey::It => {
            let g = generators::web_hybrid(120_000, 12.0, 0.93, 60.0, &mut rng.fork(11));
            unlabelled(key, g, 32, 16, seed, rng)
        }
        // ogbn-papers100M: 111M vertices, 1.6B edges, citation graph with
        // good locality (the paper: "benefits more from intra-GPU
        // deduplication due to its co-author graph structure").
        DatasetKey::Opr => {
            let g = generators::web_hybrid(240_000, 8.0, 0.82, 2500.0, &mut rng.fork(12));
            // ogbn-papers100M trains on only ~1.1% of its vertices (the
            // reason DistDGL wins on it in the paper's Table 6).
            unlabelled_with_split(key, g, 32, 16, (0.011, 0.01), seed, rng)
        }
        // friendster: 65.6M vertices, 2.5B edges, social graph with high
        // expansion — worst replication factor (α up to 18 at 512 parts).
        DatasetKey::Fds => {
            let g = generators::rmat(17, 2_800_000, RmatParams::social(), &mut rng.fork(13));
            unlabelled(key, g, 32, 16, seed, rng)
        }
    }
}

/// Labelled community dataset (accuracy experiments run on these).
#[allow(clippy::too_many_arguments)]
fn labelled(
    key: DatasetKey,
    n: usize,
    classes: usize,
    avg_degree: f64,
    p_in: f64,
    feat_dim: usize,
    signal: f64,
    label_noise: f64,
    split: (f64, f64),
    seed: u64,
    rng: &mut SeededRng,
) -> Dataset {
    let (g, mut labels) =
        generators::planted_partition(n, classes, avg_degree, p_in, &mut rng.fork(1));
    // Irreducible label noise: a fraction of vertices carry a wrong label,
    // capping achievable accuracy below 1.0 (as on the real reddit).
    if label_noise > 0.0 {
        let mut nrng = rng.fork(7);
        for l in labels.iter_mut() {
            if nrng.chance(label_noise) {
                *l = nrng.index(classes) as u32;
            }
        }
    }
    let graph = with_self_loops(&g);
    // Noisy class-signal features: a faint one-hot of the label repeated
    // across the feature vector, buried in Gaussian noise. The signal is
    // weak enough that single-vertex features do not suffice — the model
    // must aggregate neighborhoods to denoise, which is what separates the
    // full-graph and sampled training curves.
    let mut frng = rng.fork(2);
    let features = Matrix::from_fn(n, feat_dim, |v, c| {
        let s = if c % classes == labels[v] as usize {
            signal
        } else {
            0.0
        };
        s as f32 + frng.normal()
    });
    let splits = Splits::random(n, split.0, split.1, &mut rng.fork(3));
    Dataset {
        key,
        graph,
        features,
        labels,
        splits,
        num_classes: classes,
        seed,
    }
}

/// Unlabelled large graph: random features/labels, 25/25/50 split
/// (paper §7.1: "For graphs without ground-truth properties we use randomly
/// generated features, labels, training (25%), test (25%) and validation
/// (50%) set division").
fn unlabelled(
    key: DatasetKey,
    g: hongtu_graph::Graph,
    feat_dim: usize,
    classes: usize,
    seed: u64,
    rng: &mut SeededRng,
) -> Dataset {
    unlabelled_with_split(key, g, feat_dim, classes, (0.25, 0.50), seed, rng)
}

/// Unlabelled large graph with a custom train/val fraction.
fn unlabelled_with_split(
    key: DatasetKey,
    g: hongtu_graph::Graph,
    feat_dim: usize,
    classes: usize,
    split: (f64, f64),
    seed: u64,
    rng: &mut SeededRng,
) -> Dataset {
    let graph = with_self_loops(&g);
    let n = graph.num_vertices();
    let mut frng = rng.fork(2);
    let features = Matrix::from_fn(n, feat_dim, |_, _| frng.normal() * 0.5);
    let mut lrng = rng.fork(3);
    let labels: Vec<u32> = (0..n).map(|_| lrng.index(classes) as u32).collect();
    let splits = Splits::random(n, split.0, split.1, &mut rng.fork(4));
    Dataset {
        key,
        graph,
        features,
        labels,
        splits,
        num_classes: classes,
        seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_datasets_validate() {
        for key in all_keys() {
            let mut rng = SeededRng::new(42);
            let ds = load(key, &mut rng);
            assert!(
                ds.validate().is_ok(),
                "{}: {:?}",
                key.abbrev(),
                ds.validate()
            );
            assert!(ds.num_vertices() > 1000, "{} too small", key.abbrev());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = load(DatasetKey::It, &mut SeededRng::new(7));
        let b = load(DatasetKey::It, &mut SeededRng::new(7));
        assert_eq!(a.graph.csr.targets, b.graph.csr.targets);
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.features.as_slice()[..64], b.features.as_slice()[..64]);
    }

    #[test]
    fn small_large_classification_matches_sizes() {
        let mut rng = SeededRng::new(1);
        let rdt = load(DatasetKey::Rdt, &mut rng);
        let mut rng = SeededRng::new(1);
        let fds = load(DatasetKey::Fds, &mut rng);
        assert!(rdt.num_vertices() < fds.num_vertices() / 4);
    }

    #[test]
    fn replication_ordering_matches_paper() {
        // Table 3: friendster replicates far more than it-2004 at the same
        // partition count; papers (OPR) sits between or near IT.
        use hongtu_partition::{multilevel::metis_like, replication_factor};
        let alpha = |key| {
            let mut rng = SeededRng::new(3);
            let ds = load(key, &mut rng);
            let a = metis_like(&ds.graph, 16, 5);
            replication_factor(&ds.graph, &a)
        };
        let it = alpha(DatasetKey::It);
        let fds = alpha(DatasetKey::Fds);
        assert!(fds > it * 1.5, "FDS α {fds:.2} must exceed IT α {it:.2}");
    }

    #[test]
    fn rdt_is_denser_than_opt() {
        let mut rng = SeededRng::new(4);
        let rdt = load(DatasetKey::Rdt, &mut rng);
        let mut rng = SeededRng::new(4);
        let opt = load(DatasetKey::Opt, &mut rng);
        let deg = |d: &Dataset| d.num_edges() as f64 / d.num_vertices() as f64;
        assert!(deg(&rdt) > deg(&opt), "reddit proxy must be denser");
    }

    #[test]
    fn labelled_features_carry_class_signal() {
        let mut rng = SeededRng::new(5);
        let ds = load(DatasetKey::Rdt, &mut rng);
        // Mean feature value at the label-aligned coordinate should exceed
        // the global mean by roughly the configured (weak) signal.
        let mut aligned = 0.0f64;
        let mut other = 0.0f64;
        let (mut na, mut no) = (0usize, 0usize);
        for v in 0..ds.num_vertices() {
            for c in 0..ds.feat_dim() {
                let x = ds.features.get(v, c) as f64;
                if c % ds.num_classes == ds.labels[v] as usize {
                    aligned += x;
                    na += 1;
                } else {
                    other += x;
                    no += 1;
                }
            }
        }
        assert!(aligned / na as f64 > other / no as f64 + 0.05);
    }
}
