//! Analytic memory model at full paper scale (reproduces Table 1).
//!
//! The paper's Table 1 reports memory consumption of graph topology,
//! vertex data, and intermediate data for 3-layer full-graph GCN training
//! on the three billion-scale graphs. Those tensors are 100s of GB — the
//! entire point of HongTu is not to materialize them — so we reproduce the
//! numbers from the published |V|, |E| and model dimensions:
//!
//! - **topology**: CSR + CSC index structures plus per-edge normalization
//!   weights: `2·(|E|·4 + |V|·8) + |E|·4` bytes;
//! - **vertex data**: representations and gradients of every layer:
//!   `2 · |V| · Σ_l dim_l · 4` bytes (paper §1: "vertex data consist of the
//!   vertex representations and vertex gradients of every layer");
//! - **intermediate data** (GCN): the AGGREGATE output and pre-activation
//!   per layer: `|V| · Σ_l (in_l + out_l) · 4` bytes, generated in the
//!   forward pass and consumed by gradient computation.

/// Published full-scale statistics of a dataset (paper Tables 1 and 4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperScale {
    /// Dataset name.
    pub name: &'static str,
    /// Number of vertices.
    pub vertices: u64,
    /// Number of edges.
    pub edges: u64,
    /// Input feature dimension.
    pub feat_dim: u64,
    /// Number of label classes.
    pub labels: u64,
}

/// The three billion-scale datasets of Table 1, with their model configs
/// (`256-128-128-64`, `200-128-128-172`, `256-128-128-64`).
pub fn table1_datasets() -> [(PaperScale, [u64; 4]); 3] {
    [
        (
            PaperScale {
                name: "it-2004",
                vertices: 41_000_000,
                edges: 1_200_000_000,
                feat_dim: 256,
                labels: 64,
            },
            [256, 128, 128, 64],
        ),
        (
            PaperScale {
                name: "ogbn-paper",
                vertices: 111_000_000,
                edges: 1_600_000_000,
                feat_dim: 200,
                labels: 172,
            },
            [200, 128, 128, 172],
        ),
        (
            PaperScale {
                name: "friendster",
                vertices: 65_600_000,
                edges: 2_500_000_000,
                feat_dim: 256,
                labels: 64,
            },
            [256, 128, 128, 64],
        ),
    ]
}

/// Analytic memory breakdown for full-graph GCN training.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryModel {
    /// Topology bytes (CSR + CSC + edge weights).
    pub topology: u64,
    /// Vertex data bytes (`h^l` and `∇h^l` for every layer boundary).
    pub vertex_data: u64,
    /// Intermediate data bytes (GCN: aggregate + pre-activation per layer).
    pub intermediate: u64,
}

impl MemoryModel {
    /// Evaluates the model for `vertices`/`edges` and layer dimensions
    /// `dims` (length `L + 1`).
    pub fn gcn(vertices: u64, edges: u64, dims: &[u64]) -> Self {
        assert!(dims.len() >= 2, "need at least one layer");
        const F: u64 = 4; // f32
        let topology = 2 * (edges * 4 + vertices * 8) + edges * F;
        let dim_sum: u64 = dims.iter().sum();
        let vertex_data = 2 * vertices * dim_sum * F;
        let inter_sum: u64 = dims.windows(2).map(|w| w[0] + w[1]).sum();
        let intermediate = vertices * inter_sum * F;
        MemoryModel {
            topology,
            vertex_data,
            intermediate,
        }
    }

    /// Evaluates the model for a GAT of the same shape. The footnote to
    /// the paper's Table 1 notes that intermediate data "can be much
    /// larger in GNNs involving complex edge computation": autograd
    /// frameworks materialize the `|E| × d` edge-message tensor of the
    /// attention-weighted aggregation, plus per-edge score/weight scalars
    /// and the projected representations.
    pub fn gat(vertices: u64, edges: u64, dims: &[u64]) -> Self {
        assert!(dims.len() >= 2, "need at least one layer");
        const F: u64 = 4;
        let base = Self::gcn(vertices, edges, dims);
        let intermediate: u64 = dims
            .windows(2)
            .map(|w| (vertices * w[1] * 2 + edges * (w[1] + 2)) * F)
            .sum();
        MemoryModel {
            intermediate,
            ..base
        }
    }

    /// Total bytes.
    pub fn total(&self) -> u64 {
        self.topology + self.vertex_data + self.intermediate
    }
}

/// Formats bytes as `GB` with one decimal (Table 1 presentation).
pub fn gb(bytes: u64) -> f64 {
    bytes as f64 / (1u64 << 30) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shapes_match_paper_magnitudes() {
        // Paper Table 1: topo 12.8/18.0/28.9 GB; vertex 177.2/519.4/293.3;
        // intermediate 108.3/425.3/179.3. Our formulas should land within
        // ~2× of every figure (bookkeeping details differ) and preserve the
        // ordering between datasets.
        let rows: Vec<(&str, MemoryModel)> = table1_datasets()
            .iter()
            .map(|(ps, dims)| (ps.name, MemoryModel::gcn(ps.vertices, ps.edges, dims)))
            .collect();
        let paper = [
            ("it-2004", 12.8, 177.2, 108.3),
            ("ogbn-paper", 18.0, 519.4, 425.3),
            ("friendster", 28.9, 293.3, 179.3),
        ];
        for ((name, m), (pname, pt, pv, pi)) in rows.iter().zip(paper) {
            assert_eq!(*name, pname);
            for (ours, theirs, what) in [
                (gb(m.topology), pt, "topology"),
                (gb(m.vertex_data), pv, "vertex"),
                (gb(m.intermediate), pi, "intermediate"),
            ] {
                let ratio = ours / theirs;
                assert!(
                    (0.5..=2.0).contains(&ratio),
                    "{name} {what}: ours {ours:.1} GB vs paper {theirs} GB"
                );
            }
        }
        // Ordering: ogbn-paper dominates vertex data; friendster dominates
        // topology.
        assert!(rows[1].1.vertex_data > rows[0].1.vertex_data);
        assert!(rows[1].1.vertex_data > rows[2].1.vertex_data);
        assert!(rows[2].1.topology > rows[0].1.topology);
    }

    #[test]
    fn gat_intermediates_dominate_gcn() {
        // Footnote 1 of the paper: edge-heavy models blow up intermediate
        // data. At billion-edge scale the gap is enormous.
        for (ps, dims) in table1_datasets() {
            let gcn = MemoryModel::gcn(ps.vertices, ps.edges, &dims);
            let gat = MemoryModel::gat(ps.vertices, ps.edges, &dims);
            assert!(gat.intermediate > 3 * gcn.intermediate, "{}", ps.name);
            assert_eq!(gat.vertex_data, gcn.vertex_data);
            assert_eq!(gat.topology, gcn.topology);
        }
    }

    #[test]
    fn total_is_sum() {
        let m = MemoryModel::gcn(100, 1000, &[8, 4, 2]);
        assert_eq!(m.total(), m.topology + m.vertex_data + m.intermediate);
    }

    #[test]
    fn vertex_data_scales_with_dims() {
        let small = MemoryModel::gcn(1000, 10_000, &[16, 8]);
        let big = MemoryModel::gcn(1000, 10_000, &[32, 16]);
        assert_eq!(big.vertex_data, 2 * small.vertex_data);
    }

    #[test]
    fn gb_conversion() {
        assert_eq!(gb(1 << 30), 1.0);
        assert_eq!(gb(3 << 30), 3.0);
    }
}
