//! The in-memory dataset bundle.

use hongtu_graph::Graph;
use hongtu_tensor::{Matrix, SeededRng};

/// Identifies one of the five benchmark datasets (paper Table 4 keys).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKey {
    /// reddit proxy (small, dense, labelled).
    Rdt,
    /// ogbn-products proxy (small, labelled).
    Opt,
    /// it-2004 proxy (large web graph).
    It,
    /// ogbn-papers100M proxy (large citation graph).
    Opr,
    /// friendster proxy (large social graph).
    Fds,
}

impl DatasetKey {
    /// Paper abbreviation (RDT/OPT/IT/OPR/FDS).
    pub fn abbrev(self) -> &'static str {
        match self {
            DatasetKey::Rdt => "RDT",
            DatasetKey::Opt => "OPT",
            DatasetKey::It => "IT",
            DatasetKey::Opr => "OPR",
            DatasetKey::Fds => "FDS",
        }
    }

    /// Name of the real dataset this proxies.
    pub fn real_name(self) -> &'static str {
        match self {
            DatasetKey::Rdt => "reddit",
            DatasetKey::Opt => "ogbn-products",
            DatasetKey::It => "it-2004",
            DatasetKey::Opr => "ogbn-papers100M",
            DatasetKey::Fds => "friendster",
        }
    }

    /// True for the paper's "small" graphs that fit in GPU memory.
    pub fn is_small(self) -> bool {
        matches!(self, DatasetKey::Rdt | DatasetKey::Opt)
    }
}

/// Train/validation/test vertex masks.
#[derive(Debug, Clone)]
pub struct Splits {
    /// Training vertices.
    pub train: Vec<bool>,
    /// Validation vertices.
    pub val: Vec<bool>,
    /// Test vertices.
    pub test: Vec<bool>,
}

impl Splits {
    /// Random disjoint split with the given fractions (paper uses 25/25/50
    /// for the unlabeled large graphs).
    pub fn random(n: usize, train_frac: f64, val_frac: f64, rng: &mut SeededRng) -> Self {
        assert!(train_frac + val_frac <= 1.0, "split fractions exceed 1");
        let mut order: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut order);
        let n_train = (n as f64 * train_frac).round() as usize;
        let n_val = (n as f64 * val_frac).round() as usize;
        let mut train = vec![false; n];
        let mut val = vec![false; n];
        let mut test = vec![false; n];
        for (i, &v) in order.iter().enumerate() {
            if i < n_train {
                train[v] = true;
            } else if i < n_train + n_val {
                val[v] = true;
            } else {
                test[v] = true;
            }
        }
        Splits { train, val, test }
    }

    /// Sanity: masks are disjoint and cover all vertices.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.train.len();
        if self.val.len() != n || self.test.len() != n {
            return Err("mask lengths differ".into());
        }
        for v in 0..n {
            let c = self.train[v] as u8 + self.val[v] as u8 + self.test[v] as u8;
            if c != 1 {
                return Err(format!("vertex {v} appears in {c} splits"));
            }
        }
        Ok(())
    }

    /// Number of training vertices.
    pub fn num_train(&self) -> usize {
        self.train.iter().filter(|&&b| b).count()
    }
}

/// A complete dataset: topology, features, labels, splits, plus the
/// metadata of the full-scale original it proxies.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Which benchmark dataset this is.
    pub key: DatasetKey,
    /// Graph with self-loops added.
    pub graph: Graph,
    /// `|V| × feat_dim` input features.
    pub features: Matrix,
    /// Per-vertex class labels.
    pub labels: Vec<u32>,
    /// Train/val/test masks.
    pub splits: Splits,
    /// Number of classes.
    pub num_classes: usize,
    /// Master seed used to generate the dataset.
    pub seed: u64,
}

impl Dataset {
    /// Input feature dimension.
    pub fn feat_dim(&self) -> usize {
        self.features.cols()
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    /// Number of edges (including the added self-loops).
    pub fn num_edges(&self) -> usize {
        self.graph.num_edges()
    }

    /// Model dimension vector `[feat, hidden × (L-1), classes]` used by the
    /// paper's experiments (`hidden` per layer count `layers`).
    pub fn model_dims(&self, hidden: usize, layers: usize) -> Vec<usize> {
        assert!(layers >= 1, "need at least 1 layer");
        let mut dims = vec![self.feat_dim()];
        for _ in 0..layers - 1 {
            dims.push(hidden);
        }
        dims.push(self.num_classes);
        dims
    }

    /// Structural validation.
    pub fn validate(&self) -> Result<(), String> {
        self.graph.validate()?;
        self.splits.validate()?;
        if self.features.rows() != self.graph.num_vertices() {
            return Err("feature rows != vertex count".into());
        }
        if self.labels.len() != self.graph.num_vertices() {
            return Err("label count != vertex count".into());
        }
        if let Some(&l) = self
            .labels
            .iter()
            .find(|&&l| l as usize >= self.num_classes)
        {
            return Err(format!(
                "label {l} out of range ({} classes)",
                self.num_classes
            ));
        }
        // Every vertex must have a self-loop (layers rely on it).
        for v in 0..self.graph.num_vertices() as u32 {
            if !self.graph.in_neighbors(v).contains(&v) {
                return Err(format!("vertex {v} lacks a self-loop"));
            }
        }
        Ok(())
    }
}

/// Adds a self-loop on every vertex of `g`.
pub fn with_self_loops(g: &Graph) -> Graph {
    let n = g.num_vertices();
    let mut b = hongtu_graph::GraphBuilder::new(n).keep_self_loops();
    for (s, t) in g.csr.edges() {
        b.add_edge(s, t);
    }
    for v in 0..n as u32 {
        b.add_edge(v, v);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_are_disjoint_and_sized() {
        let mut rng = SeededRng::new(1);
        let s = Splits::random(1000, 0.25, 0.25, &mut rng);
        assert!(s.validate().is_ok());
        assert!((s.num_train() as f64 - 250.0).abs() < 2.0);
        let tests = s.test.iter().filter(|&&b| b).count();
        assert!((tests as f64 - 500.0).abs() < 3.0);
    }

    #[test]
    fn with_self_loops_adds_exactly_n() {
        let mut rng = SeededRng::new(2);
        let g = hongtu_graph::generators::erdos_renyi(100, 3.0, &mut rng);
        let gl = with_self_loops(&g);
        assert_eq!(gl.num_edges(), g.num_edges() + 100);
        for v in 0..100u32 {
            assert!(gl.in_neighbors(v).contains(&v));
        }
    }

    #[test]
    fn key_metadata() {
        assert!(DatasetKey::Rdt.is_small());
        assert!(!DatasetKey::Fds.is_small());
        assert_eq!(DatasetKey::Opr.abbrev(), "OPR");
        assert_eq!(DatasetKey::It.real_name(), "it-2004");
    }

    #[test]
    fn model_dims_shape() {
        let mut rng = SeededRng::new(3);
        let ds = crate::registry::load(DatasetKey::Rdt, &mut rng);
        let dims = ds.model_dims(16, 3);
        assert_eq!(dims.len(), 4);
        assert_eq!(dims[0], ds.feat_dim());
        assert_eq!(dims[1], 16);
        assert_eq!(dims[3], ds.num_classes);
    }

    #[test]
    #[should_panic(expected = "split fractions")]
    fn bad_fractions_rejected() {
        let mut rng = SeededRng::new(4);
        let _ = Splits::random(10, 0.8, 0.5, &mut rng);
    }
}
