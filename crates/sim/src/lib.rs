//! Discrete-cost multi-GPU hardware simulator.
//!
//! The paper evaluates HongTu on a 4×A100 server (NVLink 3.0 between GPUs,
//! PCIe 4.0 to the hosts, two NUMA sockets). This crate replaces that
//! hardware with an analytical cost model so the system can be reproduced
//! on a CPU-only machine:
//!
//! - **Memory** is tracked exactly: every device allocation is charged
//!   against the configured capacity and failing allocations surface as
//!   [`SimError::OutOfMemory`] — this is what produces the OOM cells of the
//!   paper's Tables 5–7.
//! - **Time** is charged per operation from bandwidth/latency/throughput
//!   parameters: host↔GPU transfers (PCIe, with a NUMA penalty when fewer
//!   GPUs than sockets force remote-socket traffic), GPU↔GPU transfers
//!   (NVLink), intra-GPU data reuse (HBM), GPU compute (separate dense and
//!   irregular-edge throughputs), and CPU compute.
//! - Each simulated GPU has its own clock; [`Machine::barrier`]
//!   synchronizes them at batch boundaries, so the epoch time is the
//!   critical-path maximum, exactly like a real bulk-synchronous schedule.
//! - All charged time is also attributed to one of the paper's breakdown
//!   buckets `{GPU, H2D, D2D, CPU, REUSE}` (Figure 9).
//!
//! The numerics of training do **not** run here — they run for real in
//! `hongtu-nn`; this crate only prices the data movement and compute.

#![forbid(unsafe_code)]

pub mod config;
pub mod machine;
pub mod memory;
pub mod shard;
pub mod trace;

pub use config::{CpuClusterConfig, MachineConfig};
pub use machine::{Machine, TimeBuckets, NUM_STREAMS};
pub use memory::{MemoryTracker, SimError};
pub use shard::{GpuShard, Timeline};
pub use trace::{
    Access, BarrierScope, ContribKind, Device, Event, EventKind, Intent, Provenance, Region,
    ResourceId, Trace, PROV_MIXED, PROV_NONE,
};
