//! Hardware configuration presets.
//!
//! Configs round-trip through a hand-rolled `key = value` text format
//! ([`MachineConfig::emit`] / [`MachineConfig::parse`]) so no serialization
//! crate is needed and the workspace builds offline.

/// Parameters of the simulated single-node multi-GPU machine.
///
/// Bandwidths are bytes/second, latencies seconds/operation, and compute
/// throughputs FLOP/second. Defaults mirror the paper's testbed (§7.1):
/// 4×A100-80GB, NVLink 3.0 (200 GB/s), PCIe 4.0 (32 GB/s), two NUMA
/// sockets.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Number of GPUs.
    pub num_gpus: usize,
    /// Device memory per GPU in bytes.
    pub gpu_memory: usize,
    /// Host memory in bytes (across all sockets).
    pub host_memory: usize,
    /// Number of NUMA sockets holding host memory.
    pub num_sockets: usize,
    /// Host↔GPU bandwidth (PCIe), bytes/s. The paper's `T_hd`.
    pub pcie_bw: f64,
    /// GPU↔GPU bandwidth (NVLink), bytes/s. The paper's `T_dd`.
    pub nvlink_bw: f64,
    /// Intra-GPU memory bandwidth (HBM), bytes/s. The paper's `T_ru`.
    pub hbm_bw: f64,
    /// Host memory bandwidth, bytes/s (CPU-side gradient accumulation).
    pub host_mem_bw: f64,
    /// Multiplier on host↔GPU time when crossing the inter-socket (QPI)
    /// link. > 1.
    pub numa_remote_factor: f64,
    /// Fixed cost per host↔GPU transfer, seconds.
    pub pcie_latency: f64,
    /// Fixed cost per GPU↔GPU transfer, seconds.
    pub nvlink_latency: f64,
    /// GPU throughput for dense (matmul-like) work, FLOP/s.
    pub gpu_dense_flops: f64,
    /// GPU throughput for irregular edge-parallel work, FLOP/s (memory
    /// bound, so much lower than dense).
    pub gpu_edge_flops: f64,
    /// CPU throughput, FLOP/s (all cores of one node).
    pub cpu_flops: f64,
}

impl MachineConfig {
    /// The paper's testbed: 4×A100 80 GB, NVLink 3.0, PCIe 4.0, 512 GB host
    /// memory spread over 4 CPU sockets (one EPYC per GPU).
    pub fn a100_4x() -> Self {
        MachineConfig {
            num_gpus: 4,
            gpu_memory: 80 << 30,
            host_memory: 512 << 30,
            num_sockets: 4,
            pcie_bw: 32.0e9,
            nvlink_bw: 200.0e9,
            hbm_bw: 2.0e12,
            host_mem_bw: 150.0e9,
            numa_remote_factor: 1.5,
            pcie_latency: 10.0e-6,
            nvlink_latency: 5.0e-6,
            gpu_dense_flops: 19.5e12,
            gpu_edge_flops: 0.8e12,
            cpu_flops: 1.5e11,
        }
    }

    /// The testbed scaled down to mini datasets: identical bandwidth/compute
    /// *ratios* (which is what determines every relative result in the
    /// paper), but `mem_bytes` of device memory so the scaled-down graphs
    /// exercise the same out-of-memory regime as the billion-edge originals
    /// did against 80 GB.
    pub fn scaled(num_gpus: usize, mem_bytes: usize) -> Self {
        MachineConfig {
            num_gpus,
            gpu_memory: mem_bytes,
            host_memory: mem_bytes * 64,
            // Proxies are ~1000× smaller than the originals; shrink the
            // fixed per-transfer latencies by the same factor so the
            // latency/bandwidth balance of a full-scale transfer is kept.
            pcie_latency: 10.0e-9,
            nvlink_latency: 5.0e-9,
            ..Self::a100_4x()
        }
    }

    /// A PCIe-only variant (no NVLink): inter-GPU traffic moves at PCIe
    /// speed. Used by the "effectiveness with various interconnects"
    /// discussion in §5.3.
    pub fn pcie_only(mut self) -> Self {
        self.nvlink_bw = self.pcie_bw;
        self.nvlink_latency = self.pcie_latency;
        self
    }

    /// Effective host↔GPU seconds/byte, accounting for the NUMA layout:
    /// with one GPU per socket the vertex data is allocated NUMA-aware and
    /// all PCIe traffic stays socket-local; with fewer GPUs than sockets
    /// the data must still span every socket (for capacity), so a
    /// `1 − num_gpus/num_sockets` fraction of traffic pays the remote
    /// factor (paper §7.6: "When using two or fewer GPUs, we must use the
    /// memory from all sockets, resulting in remote memory access
    /// overhead").
    pub fn pcie_seconds_per_byte(&self) -> f64 {
        let base = 1.0 / self.pcie_bw;
        let local = (self.num_gpus as f64 / self.num_sockets as f64).min(1.0);
        base * (local + (1.0 - local) * self.numa_remote_factor)
    }

    // ---- cost formulas ----
    //
    // The analytic cost model lives here (not on `Machine`) so that both
    // the sequential machine and the per-GPU `GpuShard` timelines of the
    // parallel executor charge *exactly* the same float expressions.

    /// Seconds for a host↔GPU transfer of `bytes` over PCIe.
    pub fn pcie_transfer_seconds(&self, bytes: usize) -> f64 {
        self.pcie_latency + bytes as f64 * self.pcie_seconds_per_byte()
    }

    /// Seconds for a host↔GPU transfer where `remote_bytes` of the payload
    /// cross the inter-socket link and pay [`MachineConfig::numa_remote_factor`].
    pub fn mixed_pcie_transfer_seconds(&self, bytes: usize, remote_bytes: usize) -> f64 {
        debug_assert!(remote_bytes <= bytes);
        let spb = self.pcie_seconds_per_byte();
        self.pcie_latency
            + (bytes - remote_bytes) as f64 * spb
            + remote_bytes as f64 * spb * self.numa_remote_factor
    }

    /// Seconds for a GPU↔GPU transfer of `bytes` over NVLink.
    pub fn nvlink_transfer_seconds(&self, bytes: usize) -> f64 {
        self.nvlink_latency + bytes as f64 / self.nvlink_bw
    }

    /// Seconds for an intra-GPU buffer copy of `bytes` at HBM speed.
    pub fn reuse_seconds(&self, bytes: usize) -> f64 {
        bytes as f64 / self.hbm_bw
    }

    /// Seconds for `flops` of dense (matmul-like) GPU work.
    pub fn gpu_dense_seconds(&self, flops: f64) -> f64 {
        flops / self.gpu_dense_flops
    }

    /// Seconds for `flops` of irregular edge-parallel GPU work.
    pub fn gpu_edge_seconds(&self, flops: f64) -> f64 {
        flops / self.gpu_edge_flops
    }

    /// Seconds for `flops` of host CPU work; throughput is divided by the
    /// GPU count because every GPU's host-side work contends for the CPUs.
    pub fn cpu_compute_seconds(&self, flops: f64) -> f64 {
        flops / (self.cpu_flops / self.num_gpus as f64)
    }

    /// Seconds for a host-side gradient accumulation of `bytes` (read old,
    /// add, write back — three memory touches per byte) at the per-GPU
    /// share of host memory bandwidth.
    pub fn cpu_accumulate_seconds(&self, bytes: usize) -> f64 {
        let bw = self.host_mem_bw / self.num_gpus as f64;
        3.0 * bytes as f64 / bw
    }

    /// Emits the config as `key = value` lines (one field per line), the
    /// inverse of [`MachineConfig::parse`].
    pub fn emit(&self) -> String {
        let mut out = String::new();
        for (key, value) in self.fields() {
            out.push_str(&format!("{key} = {value}\n"));
        }
        out
    }

    /// Parses the `key = value` format produced by [`MachineConfig::emit`].
    /// Unknown keys are rejected; missing keys keep the `a100_4x` default,
    /// so partial configs are valid overrides. Lines that are empty or
    /// start with `#` are skipped.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut cfg = Self::a100_4x();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected `key = value`", lineno + 1))?;
            let (key, value) = (key.trim(), value.trim());
            let parse_usize = || -> Result<usize, String> {
                value
                    .parse()
                    .map_err(|e| format!("line {}: {key}: {e}", lineno + 1))
            };
            let parse_f64 = || -> Result<f64, String> {
                value
                    .parse()
                    .map_err(|e| format!("line {}: {key}: {e}", lineno + 1))
            };
            match key {
                "num_gpus" => cfg.num_gpus = parse_usize()?,
                "gpu_memory" => cfg.gpu_memory = parse_usize()?,
                "host_memory" => cfg.host_memory = parse_usize()?,
                "num_sockets" => cfg.num_sockets = parse_usize()?,
                "pcie_bw" => cfg.pcie_bw = parse_f64()?,
                "nvlink_bw" => cfg.nvlink_bw = parse_f64()?,
                "hbm_bw" => cfg.hbm_bw = parse_f64()?,
                "host_mem_bw" => cfg.host_mem_bw = parse_f64()?,
                "numa_remote_factor" => cfg.numa_remote_factor = parse_f64()?,
                "pcie_latency" => cfg.pcie_latency = parse_f64()?,
                "nvlink_latency" => cfg.nvlink_latency = parse_f64()?,
                "gpu_dense_flops" => cfg.gpu_dense_flops = parse_f64()?,
                "gpu_edge_flops" => cfg.gpu_edge_flops = parse_f64()?,
                "cpu_flops" => cfg.cpu_flops = parse_f64()?,
                other => return Err(format!("line {}: unknown key `{other}`", lineno + 1)),
            }
        }
        cfg.validate()?;
        Ok(cfg)
    }

    /// `(key, rendered value)` pairs, in emit order.
    fn fields(&self) -> Vec<(&'static str, String)> {
        vec![
            ("num_gpus", self.num_gpus.to_string()),
            ("gpu_memory", self.gpu_memory.to_string()),
            ("host_memory", self.host_memory.to_string()),
            ("num_sockets", self.num_sockets.to_string()),
            ("pcie_bw", format!("{:?}", self.pcie_bw)),
            ("nvlink_bw", format!("{:?}", self.nvlink_bw)),
            ("hbm_bw", format!("{:?}", self.hbm_bw)),
            ("host_mem_bw", format!("{:?}", self.host_mem_bw)),
            (
                "numa_remote_factor",
                format!("{:?}", self.numa_remote_factor),
            ),
            ("pcie_latency", format!("{:?}", self.pcie_latency)),
            ("nvlink_latency", format!("{:?}", self.nvlink_latency)),
            ("gpu_dense_flops", format!("{:?}", self.gpu_dense_flops)),
            ("gpu_edge_flops", format!("{:?}", self.gpu_edge_flops)),
            ("cpu_flops", format!("{:?}", self.cpu_flops)),
        ]
    }

    /// Basic sanity checks; call after hand-editing a config.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_gpus == 0 {
            return Err("num_gpus must be >= 1".into());
        }
        if self.num_sockets == 0 {
            return Err("num_sockets must be >= 1".into());
        }
        for (name, v) in [
            ("pcie_bw", self.pcie_bw),
            ("nvlink_bw", self.nvlink_bw),
            ("hbm_bw", self.hbm_bw),
            ("host_mem_bw", self.host_mem_bw),
            ("gpu_dense_flops", self.gpu_dense_flops),
            ("gpu_edge_flops", self.gpu_edge_flops),
            ("cpu_flops", self.cpu_flops),
        ] {
            if v.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
                return Err(format!("{name} must be positive (got {v})"));
            }
        }
        if self.numa_remote_factor < 1.0 {
            return Err("numa_remote_factor must be >= 1".into());
        }
        Ok(())
    }
}

/// A shared-nothing CPU cluster (the DistGNN comparator, §7.1: 16 ECS
/// nodes, 20 Gbps network).
#[derive(Debug, Clone, PartialEq)]
pub struct CpuClusterConfig {
    /// Number of nodes.
    pub num_nodes: usize,
    /// Host memory per node, bytes.
    pub node_memory: usize,
    /// Per-node compute throughput, FLOP/s.
    pub node_flops: f64,
    /// Per-node memory bandwidth, bytes/s.
    pub node_mem_bw: f64,
    /// Inter-node network bandwidth, bytes/s per node.
    pub network_bw: f64,
}

impl CpuClusterConfig {
    /// The paper's 16-node Aliyun ECS cluster (ecs.r5.16xlarge: 56 vCPU,
    /// 512 GB, 20 Gbps).
    pub fn ecs_16() -> Self {
        CpuClusterConfig {
            num_nodes: 16,
            node_memory: 512 << 30,
            node_flops: 2.5e11,
            node_mem_bw: 120.0e9,
            network_bw: 2.5e9, // 20 Gbps
        }
    }

    /// The paper's single CPU server (2× Xeon 6246R, 32 cores, 768 GB).
    pub fn single_node() -> Self {
        CpuClusterConfig {
            num_nodes: 1,
            node_memory: 768 << 30,
            node_flops: 2.0e11,
            node_mem_bw: 140.0e9,
            network_bw: f64::INFINITY,
        }
    }

    /// Scaled-down variant holding `mem_bytes` per node.
    pub fn scaled(num_nodes: usize, mem_bytes: usize) -> Self {
        let base = if num_nodes == 1 {
            Self::single_node()
        } else {
            Self::ecs_16()
        };
        CpuClusterConfig {
            num_nodes,
            node_memory: mem_bytes,
            ..base
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_preset_is_valid() {
        let c = MachineConfig::a100_4x();
        assert!(c.validate().is_ok());
        assert_eq!(c.num_gpus, 4);
        assert_eq!(c.gpu_memory, 80 << 30);
        // NVLink must be much faster than PCIe for dedup to pay off.
        assert!(c.nvlink_bw > 4.0 * c.pcie_bw);
        assert!(c.hbm_bw > c.nvlink_bw);
    }

    #[test]
    fn scaled_keeps_ratios() {
        let a = MachineConfig::a100_4x();
        let s = MachineConfig::scaled(4, 64 << 20);
        assert_eq!(s.gpu_memory, 64 << 20);
        assert_eq!(s.pcie_bw, a.pcie_bw);
        assert_eq!(s.nvlink_bw, a.nvlink_bw);
    }

    #[test]
    fn numa_penalty_applies_below_socket_count() {
        let full = MachineConfig::scaled(4, 1 << 20);
        let two = MachineConfig::scaled(2, 1 << 20);
        let one = MachineConfig::scaled(1, 1 << 20);
        // One GPU per socket: all traffic local.
        assert_eq!(full.pcie_seconds_per_byte(), 1.0 / full.pcie_bw);
        // Fewer GPUs than sockets: progressively more remote traffic.
        assert!(two.pcie_seconds_per_byte() > 1.0 / two.pcie_bw);
        assert!(one.pcie_seconds_per_byte() > two.pcie_seconds_per_byte());
    }

    #[test]
    fn pcie_only_removes_nvlink_advantage() {
        let c = MachineConfig::a100_4x().pcie_only();
        assert_eq!(c.nvlink_bw, c.pcie_bw);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validate_rejects_nonsense() {
        let mut c = MachineConfig::a100_4x();
        c.num_gpus = 0;
        assert!(c.validate().is_err());
        let mut c = MachineConfig::a100_4x();
        c.pcie_bw = 0.0;
        assert!(c.validate().is_err());
        let mut c = MachineConfig::a100_4x();
        c.numa_remote_factor = 0.5;
        assert!(c.validate().is_err());
    }

    #[test]
    fn emit_parse_roundtrip() {
        for cfg in [
            MachineConfig::a100_4x(),
            MachineConfig::scaled(2, 64 << 20),
            MachineConfig::a100_4x().pcie_only(),
        ] {
            let text = cfg.emit();
            let back = MachineConfig::parse(&text).expect("parse emitted config");
            assert_eq!(back, cfg, "roundtrip failed for:\n{text}");
        }
    }

    #[test]
    fn parse_accepts_partial_overrides_and_comments() {
        let cfg = MachineConfig::parse("# testbed override\nnum_gpus = 2\n\npcie_bw = 16e9\n")
            .expect("partial config");
        assert_eq!(cfg.num_gpus, 2);
        assert_eq!(cfg.pcie_bw, 16e9);
        // Unset keys keep the a100_4x defaults.
        assert_eq!(cfg.nvlink_bw, MachineConfig::a100_4x().nvlink_bw);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(MachineConfig::parse("not a key-value line").is_err());
        assert!(MachineConfig::parse("mystery_knob = 4").is_err());
        assert!(MachineConfig::parse("num_gpus = many").is_err());
        // Parsed configs are validated: zero GPUs must be rejected.
        assert!(MachineConfig::parse("num_gpus = 0").is_err());
    }

    #[test]
    fn cluster_presets() {
        let ecs = CpuClusterConfig::ecs_16();
        assert_eq!(ecs.num_nodes, 16);
        let single = CpuClusterConfig::single_node();
        assert_eq!(single.num_nodes, 1);
        assert!(single.network_bw.is_infinite());
    }
}
