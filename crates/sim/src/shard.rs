//! Per-GPU timeline shards for the parallel epoch executor.
//!
//! The sequential engine charges every simulated operation to a single
//! [`Machine`](crate::machine::Machine). The parallel executor instead runs
//! the m GPUs of a batch on m worker threads; each thread owns a
//! [`GpuShard`] — that GPU's clock, memory tracker, time buckets, and a
//! private event log — so no charging method ever touches shared state.
//! [`Machine::fork_shards`](crate::machine::Machine::fork_shards) splits the
//! machine into shards at a phase boundary and
//! [`Machine::join_shards`](crate::machine::Machine::join_shards) merges them
//! back **in GPU index order**, which keeps clocks, buckets, and the trace
//! bitwise identical to the sequential schedule for the phased execution
//! modes.
//!
//! The [`Timeline`] trait abstracts over the two: engine step functions are
//! written once, generic over `T: Timeline`, and run unchanged against the
//! whole machine (sequential mode) or a single shard (parallel mode).
//!
//! One operation cannot be charged shard-locally: the *naive* schedule's
//! source-side serving stall (`d2d(k, k, bytes)` — GPU `k` stalls while
//! GPU `i` fetches from it). A shard for GPU `i` must not touch GPU `k`'s
//! clock, so [`Timeline::source_stall`] defers the charge; the join applies
//! deferred stalls after merging. Clock *sums* are unaffected (no barrier
//! intervenes inside a phase), but event order in the trace differs from
//! sequential in naive mode.

use crate::config::MachineConfig;
use crate::machine::{TimeBuckets, NUM_STREAMS};
use crate::memory::{MemoryTracker, SimError};
use crate::trace::{Access, Device, Event, EventKind};

/// The charging interface shared by [`Machine`](crate::machine::Machine)
/// (sequential execution) and [`GpuShard`] (one worker thread of the
/// parallel executor). Both implementations evaluate the *same* cost
/// formulas — they live on [`MachineConfig`] — so a schedule charges
/// identical times through either.
pub trait Timeline {
    /// The machine configuration (cost model parameters).
    fn machine_config(&self) -> &MachineConfig;

    /// Stages access annotations for the next charged operation.
    fn tag<I: IntoIterator<Item = Access>>(&mut self, accesses: I);

    /// Selects the stream subsequent charges are issued on (see
    /// [`NUM_STREAMS`](crate::machine::NUM_STREAMS)). The cursor resets to
    /// the default stream at barriers
    /// ([`Machine::sync`](crate::machine::Machine::sync)) and at shard
    /// forks.
    fn set_stream(&mut self, stream: u8);

    /// Makes GPU `gpu`'s current stream wait for everything issued so far
    /// on its `upstream` stream: a zero-cost cross-stream dependency that
    /// joins the current stream's clock up to the upstream's and records
    /// an [`EventKind::StreamWait`] ordering edge.
    fn stream_wait(&mut self, gpu: usize, upstream: u8);

    /// Allocates `bytes` on GPU `gpu`.
    fn alloc(&mut self, gpu: usize, bytes: usize, label: &str) -> Result<(), SimError>;

    /// Frees `bytes` on GPU `gpu`.
    fn free(&mut self, gpu: usize, bytes: usize);

    /// Charges a host→GPU transfer of `bytes` to GPU `gpu`.
    fn h2d(&mut self, gpu: usize, bytes: usize) -> f64;

    /// Charges a host→GPU transfer with `remote_bytes` crossing sockets.
    fn h2d_mixed(&mut self, gpu: usize, bytes: usize, remote_bytes: usize) -> f64;

    /// Charges a GPU→host transfer of `bytes` to GPU `gpu`.
    fn d2h(&mut self, gpu: usize, bytes: usize) -> f64;

    /// Charges a GPU→host transfer with `remote_bytes` crossing sockets.
    fn d2h_mixed(&mut self, gpu: usize, bytes: usize, remote_bytes: usize) -> f64;

    /// Charges a GPU↔GPU transfer of `bytes` to the initiating GPU `dst`.
    fn d2d(&mut self, src: usize, dst: usize, bytes: usize) -> f64;

    /// Charges a source-side serving stall: GPU `src` is busy for the
    /// duration of a `bytes` transfer it serves to another GPU (the naive
    /// schedule's contention cost). On a [`GpuShard`] that does not own
    /// `src` the charge is deferred to the join.
    fn source_stall(&mut self, src: usize, bytes: usize);

    /// Charges an intra-GPU buffer reuse of `bytes` to GPU `gpu`.
    fn reuse(&mut self, gpu: usize, bytes: usize) -> f64;

    /// Charges `flops` of dense GPU work to GPU `gpu`.
    fn gpu_dense(&mut self, gpu: usize, flops: f64) -> f64;

    /// Charges `flops` of irregular edge-parallel GPU work to GPU `gpu`.
    fn gpu_edge(&mut self, gpu: usize, flops: f64) -> f64;

    /// Charges `flops` of host CPU work serialized onto GPU `waiting_gpu`.
    fn cpu_compute(&mut self, waiting_gpu: usize, flops: f64) -> f64;

    /// Charges a host-side gradient accumulation of `bytes` onto GPU
    /// `waiting_gpu`.
    fn cpu_accumulate(&mut self, waiting_gpu: usize, bytes: usize) -> f64;
}

/// One GPU's private slice of the simulated machine, detached for the
/// duration of a parallel phase. Built by
/// [`Machine::fork_shards`](crate::machine::Machine::fork_shards); every
/// charging method asserts it is addressed as its own GPU.
#[derive(Debug)]
pub struct GpuShard {
    pub(crate) gpu: usize,
    pub(crate) config: MachineConfig,
    pub(crate) clock: [f64; NUM_STREAMS],
    pub(crate) stream: u8,
    pub(crate) buckets: TimeBuckets,
    pub(crate) memory: MemoryTracker,
    pub(crate) tracing: bool,
    pub(crate) events: Vec<Event>,
    pub(crate) pending: Vec<Access>,
    /// `(src, bytes)` serving stalls to apply at the join.
    pub(crate) deferred_stalls: Vec<(usize, usize)>,
}

impl GpuShard {
    /// The GPU index this shard owns.
    pub fn gpu(&self) -> usize {
        self.gpu
    }

    /// The shard's current clock (seconds): the furthest-ahead of its
    /// streams.
    pub fn clock(&self) -> f64 {
        self.clock.iter().copied().fold(0.0, f64::max)
    }

    /// The shard's clock on one specific stream.
    pub fn stream_clock(&self, stream: u8) -> f64 {
        self.clock[stream as usize]
    }

    /// The shard's memory tracker.
    pub fn memory(&self) -> &MemoryTracker {
        &self.memory
    }

    #[track_caller]
    fn own(&self, gpu: usize) {
        assert_eq!(
            gpu, self.gpu,
            "GpuShard for GPU {} charged as GPU {gpu}: shards are strictly per-GPU",
            self.gpu
        );
    }

    fn record(&mut self, kind: EventKind, bytes: usize, seconds: f64) {
        if !self.tracing {
            return;
        }
        let accesses = std::mem::take(&mut self.pending);
        self.events.push(
            Event::new(
                kind,
                Device::Gpu(self.gpu as u32),
                bytes,
                seconds,
                self.clock[self.stream as usize],
            )
            .on_stream(self.stream)
            .with_accesses(accesses),
        );
    }
}

impl Timeline for GpuShard {
    fn machine_config(&self) -> &MachineConfig {
        &self.config
    }

    fn tag<I: IntoIterator<Item = Access>>(&mut self, accesses: I) {
        if !self.tracing {
            return;
        }
        self.pending.extend(accesses);
    }

    fn set_stream(&mut self, stream: u8) {
        assert!(
            (stream as usize) < NUM_STREAMS,
            "stream {stream} out of range (NUM_STREAMS = {NUM_STREAMS})"
        );
        self.stream = stream;
    }

    fn stream_wait(&mut self, gpu: usize, upstream: u8) {
        self.own(gpu);
        let cur = self.stream as usize;
        self.clock[cur] = self.clock[cur].max(self.clock[upstream as usize]);
        self.record(EventKind::StreamWait { upstream }, 0, 0.0);
    }

    fn alloc(&mut self, gpu: usize, bytes: usize, label: &str) -> Result<(), SimError> {
        self.own(gpu);
        self.memory.alloc(bytes, label)
    }

    fn free(&mut self, gpu: usize, bytes: usize) {
        self.own(gpu);
        self.memory.free(bytes);
    }

    fn h2d(&mut self, gpu: usize, bytes: usize) -> f64 {
        self.own(gpu);
        let t = self.config.pcie_transfer_seconds(bytes);
        self.clock[self.stream as usize] += t;
        self.buckets.h2d += t;
        self.buckets.bytes_h2d += bytes as u64;
        self.record(EventKind::H2D, bytes, t);
        t
    }

    fn h2d_mixed(&mut self, gpu: usize, bytes: usize, remote_bytes: usize) -> f64 {
        self.own(gpu);
        let t = self.config.mixed_pcie_transfer_seconds(bytes, remote_bytes);
        self.clock[self.stream as usize] += t;
        self.buckets.h2d += t;
        self.buckets.bytes_h2d += bytes as u64;
        self.record(EventKind::H2D, bytes, t);
        t
    }

    fn d2h(&mut self, gpu: usize, bytes: usize) -> f64 {
        self.own(gpu);
        let t = self.config.pcie_transfer_seconds(bytes);
        self.clock[self.stream as usize] += t;
        self.buckets.h2d += t;
        self.buckets.bytes_d2h += bytes as u64;
        self.record(EventKind::D2H, bytes, t);
        t
    }

    fn d2h_mixed(&mut self, gpu: usize, bytes: usize, remote_bytes: usize) -> f64 {
        self.own(gpu);
        let t = self.config.mixed_pcie_transfer_seconds(bytes, remote_bytes);
        self.clock[self.stream as usize] += t;
        self.buckets.h2d += t;
        self.buckets.bytes_d2h += bytes as u64;
        self.record(EventKind::D2H, bytes, t);
        t
    }

    fn d2d(&mut self, _src: usize, dst: usize, bytes: usize) -> f64 {
        self.own(dst);
        let t = self.config.nvlink_transfer_seconds(bytes);
        self.clock[self.stream as usize] += t;
        self.buckets.d2d += t;
        self.buckets.bytes_d2d += bytes as u64;
        self.record(EventKind::D2D, bytes, t);
        t
    }

    fn source_stall(&mut self, src: usize, bytes: usize) {
        if src == self.gpu {
            self.d2d(src, src, bytes);
        } else {
            self.deferred_stalls.push((src, bytes));
        }
    }

    fn reuse(&mut self, gpu: usize, bytes: usize) -> f64 {
        self.own(gpu);
        let t = self.config.reuse_seconds(bytes);
        self.clock[self.stream as usize] += t;
        self.buckets.reuse += t;
        self.buckets.bytes_reuse += bytes as u64;
        self.record(EventKind::Reuse, bytes, t);
        t
    }

    fn gpu_dense(&mut self, gpu: usize, flops: f64) -> f64 {
        self.own(gpu);
        let t = self.config.gpu_dense_seconds(flops);
        self.clock[self.stream as usize] += t;
        self.buckets.gpu += t;
        self.record(EventKind::GpuCompute, 0, t);
        t
    }

    fn gpu_edge(&mut self, gpu: usize, flops: f64) -> f64 {
        self.own(gpu);
        let t = self.config.gpu_edge_seconds(flops);
        self.clock[self.stream as usize] += t;
        self.buckets.gpu += t;
        self.record(EventKind::GpuCompute, 0, t);
        t
    }

    fn cpu_compute(&mut self, waiting_gpu: usize, flops: f64) -> f64 {
        self.own(waiting_gpu);
        let t = self.config.cpu_compute_seconds(flops);
        self.clock[self.stream as usize] += t;
        self.buckets.cpu += t;
        self.record(EventKind::CpuCompute, 0, t);
        t
    }

    fn cpu_accumulate(&mut self, waiting_gpu: usize, bytes: usize) -> f64 {
        self.own(waiting_gpu);
        let t = self.config.cpu_accumulate_seconds(bytes);
        self.clock[self.stream as usize] += t;
        self.buckets.cpu += t;
        self.record(EventKind::CpuCompute, bytes, t);
        t
    }
}
