//! Event trace for debugging, the bench harness's communication-volume
//! reports, and the happens-before schedule checker (`hongtu-verify`'s
//! trace pass).
//!
//! Every charged operation can carry *access annotations*: which logical
//! resource it touches (a host layer store, a GPU's merged neighbor
//! buffer, a cached-aggregate checkpoint slot, …), over which region,
//! with which intent (read / write / atomic accumulate), and optionally
//! the batch generation that produced the data. The checker reconstructs
//! a happens-before order from (device, stream, barrier) edges and
//! verifies the schedule against those annotations.

/// The kind of a simulated operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// Host → GPU transfer.
    H2D,
    /// GPU → host transfer.
    D2H,
    /// GPU → GPU transfer.
    D2D,
    /// Intra-GPU data reuse (buffer-to-buffer at HBM speed).
    Reuse,
    /// GPU compute.
    GpuCompute,
    /// CPU compute.
    CpuCompute,
    /// Cross-stream dependency on the *same* device: the current stream
    /// waits until everything already issued on `upstream` has completed
    /// (the `cudaStreamWaitEvent` analogue). Costs no time of its own —
    /// it only joins the waiting stream's clock up to the upstream
    /// stream's, and tells the happens-before checker that subsequent
    /// events on this (device, stream) are ordered after prior events on
    /// (device, upstream).
    StreamWait {
        /// The stream being waited on.
        upstream: u8,
    },
    /// Barrier synchronization (all device clocks joined).
    Barrier(BarrierScope),
}

/// What a barrier separates. All scopes synchronize every clock; the
/// scope records the *protocol* role so the schedule checker can verify
/// batch coverage (`S501`) without hard-coding the engine's loop shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BarrierScope {
    /// Intra-batch phase boundary (e.g. between the dedup H2D load phase
    /// and the inter-GPU fetch phase of Algorithm 2).
    Phase,
    /// Batch boundary (Algorithm 1's per-batch synchronization).
    Batch,
    /// Epoch boundary (after the parameter all-reduce).
    Epoch,
}

/// The device an event executes on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Device {
    /// The host CPU.
    Host,
    /// GPU with the given index.
    Gpu(u32),
}

impl Device {
    /// GPU index, if this is a GPU.
    pub fn gpu(self) -> Option<u32> {
        match self {
            Device::Host => None,
            Device::Gpu(g) => Some(g),
        }
    }
}

impl std::fmt::Display for Device {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Device::Host => f.write_str("host"),
            Device::Gpu(g) => write!(f, "gpu{g}"),
        }
    }
}

/// How an access touches its resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Intent {
    /// Plain read.
    Read,
    /// Plain write.
    Write,
    /// Atomic accumulate (`+=`). Two accumulates commute and therefore do
    /// not race with each other, but an accumulate conflicts with both
    /// plain reads and plain writes.
    Accum,
}

/// A logical resource of the simulated training state. Identities are
/// *logical* (what the data means), not physical addresses; the checker
/// pairs them with [`Region`]s to reason about partial overlap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResourceId {
    /// Host-resident layer representations `h^l` (layer 0 = input
    /// features, which exist before the epoch starts).
    Rep {
        /// Layer index.
        layer: u32,
    },
    /// Host-resident layer gradients `∇h^l`.
    Grad {
        /// Layer index.
        layer: u32,
    },
    /// CPU-resident cached-aggregate checkpoint slot of the hybrid
    /// strategy (§4.2), one per (layer, GPU, chunk).
    AggCache {
        /// Layer index.
        layer: u32,
        /// Owning GPU / partition.
        gpu: u32,
        /// Chunk (batch) index.
        chunk: u32,
    },
    /// A GPU's merged transition/neighbor representation buffer (§6's
    /// in-place `M_ij` buffer). Remote GPUs read the `Owned` region of
    /// this buffer over P2P.
    DevRep {
        /// Owning GPU.
        gpu: u32,
    },
    /// One slot of a GPU's double-buffered representation staging pair
    /// (`OverlapMode::DoubleBuffer`): batch `j` lives in slot `j % 2`, so
    /// the prefetch of batch `j+1` writes the *other* slot while batch
    /// `j` computes. Distinct slots are distinct resources.
    DevRepSlot {
        /// Owning GPU.
        gpu: u32,
        /// Staging slot (`batch % 2`).
        slot: u8,
    },
    /// A GPU's transition-gradient accumulation buffer (Algorithm 3).
    /// Remote GPUs `Accum` into it; the owner evicts it to the CPU.
    DevGrad {
        /// Owning GPU.
        gpu: u32,
    },
    /// One slot of a GPU's double-buffered gradient staging pair: batch
    /// `j` accumulates into slot `j % 2` while slot `(j-1) % 2` drains
    /// D2H behind it.
    DevGradSlot {
        /// Owning GPU.
        gpu: u32,
        /// Staging slot (`batch % 2`).
        slot: u8,
    },
    /// A GPU's resident chunk topology (CSC structure).
    Topology {
        /// Owning GPU.
        gpu: u32,
    },
    /// A GPU's hot-vertex feature cache: admitted layer-0 rows kept in
    /// spare HBM so repeated host loads skip PCIe. Contents mirror the
    /// immutable `h^0` (valid from the start, like `Rep { layer: 0 }`);
    /// accesses are advisory and carry no generation.
    DevCache {
        /// Owning GPU.
        gpu: u32,
    },
}

impl ResourceId {
    /// Resources whose contents are valid before the first event of a
    /// trace (reads need no prior write): the input features and the
    /// hot-vertex cache that mirrors them.
    pub fn initially_valid(self) -> bool {
        matches!(
            self,
            ResourceId::Rep { layer: 0 } | ResourceId::DevCache { .. }
        )
    }
}

impl std::fmt::Display for ResourceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResourceId::Rep { layer } => write!(f, "h^{layer}"),
            ResourceId::Grad { layer } => write!(f, "∇h^{layer}"),
            ResourceId::AggCache { layer, gpu, chunk } => {
                write!(f, "agg-cache[{layer}][{gpu}][{chunk}]")
            }
            ResourceId::DevRep { gpu } => write!(f, "gpu{gpu} rep buffer"),
            ResourceId::DevRepSlot { gpu, slot } => {
                write!(f, "gpu{gpu} rep staging slot {slot}")
            }
            ResourceId::DevGrad { gpu } => write!(f, "gpu{gpu} grad buffer"),
            ResourceId::DevGradSlot { gpu, slot } => {
                write!(f, "gpu{gpu} grad staging slot {slot}")
            }
            ResourceId::Topology { gpu } => write!(f, "gpu{gpu} topology"),
            ResourceId::DevCache { gpu } => write!(f, "gpu{gpu} feature cache"),
        }
    }
}

/// A sub-region of a resource. Regions let disjoint accesses (two chunks'
/// destination rows, the owned vs fetched halves of a merged buffer)
/// proceed concurrently without a false race.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    /// The whole resource.
    All,
    /// The owner-populated part (e.g. a GPU's transition rows `ℕ_ij`).
    Owned,
    /// The part populated by remote fetches.
    Fetched,
    /// The rows owned by chunk `(gpu, chunk)` — disjoint across chunks
    /// because chunks tile `V` (verified by the partition pass).
    Chunk {
        /// Owning GPU / partition.
        gpu: u32,
        /// Chunk index within the partition.
        chunk: u32,
    },
    /// The rows owned by one partition — disjoint across partitions.
    Part(u32),
}

impl Region {
    /// Whether two regions can touch the same bytes. Conservative: only
    /// provably-disjoint pairs return `false`.
    pub fn overlaps(self, other: Region) -> bool {
        use Region::*;
        match (self, other) {
            (All, _) | (_, All) => true,
            (Owned, Owned) | (Fetched, Fetched) => true,
            (Owned, Fetched) | (Fetched, Owned) => false,
            (Chunk { gpu: a, chunk: b }, Chunk { gpu: c, chunk: d }) => (a, b) == (c, d),
            (Part(a), Part(b)) => a == b,
            // Cross-variant pairs (e.g. Chunk vs Part) have no defined
            // disjointness proof — assume overlap.
            _ => true,
        }
    }
}

/// What role a provenance-tagged access plays in the dataflow (which
/// side of a contribution ledger it lands on). See
/// [`Provenance`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ContribKind {
    /// Host → GPU load populating a neighbor/transition buffer.
    HostLoad,
    /// In-place reuse of rows surviving from the previous batch's buffer
    /// (the `ℕ^gpu` split of §5.2).
    Reuse,
    /// P2P serve of rows owned by a remote GPU.
    Fetch,
    /// An aggregation consuming a fully-populated neighbor buffer.
    Aggregate,
    /// Writeback of computed activations into the host layer store.
    ActStore,
    /// Store of a cached-aggregate checkpoint (§4.2 hybrid strategy).
    CkptStore,
    /// Reload of a cached-aggregate checkpoint in the backward pass.
    CkptReload,
    /// Locally-kept gradient rows accumulated into the owner's buffer.
    GradLocal,
    /// Gradient rows pushed P2P into a remote owner's buffer.
    GradPush,
    /// Eviction of an accumulated gradient buffer to the host.
    GradFlush,
}

/// Sentinel for [`Provenance::owner`] when the rows span multiple
/// owners (a vanilla full-neighbor load, an in-place reuse window).
pub const PROV_MIXED: u32 = u32::MAX;

/// Sentinel for [`Provenance::from`] when no serving/pushing GPU
/// applies.
pub const PROV_NONE: u32 = u32::MAX;

/// Dataflow provenance of an access: which contribution it carries,
/// for which `(layer, batch)` value generation, and how many rows.
/// Values derive purely from the partition/dedup plans (never from
/// runtime data), so the synthesized schedule and the executed one
/// carry identical provenance. Consumed by `hongtu-verify`'s pass 9
/// (dataflow conservation, `F8xx`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Provenance {
    /// Ledger role of this access.
    pub kind: ContribKind,
    /// Layer whose values the rows carry.
    pub layer: u32,
    /// Batch (chunk index) of the value generation.
    pub batch: u32,
    /// Partition owning the moved rows ([`PROV_MIXED`] when mixed).
    pub owner: u32,
    /// Serving GPU for fetches / pushing GPU for gradient pushes
    /// ([`PROV_NONE`] otherwise).
    pub from: u32,
    /// Row count of the contribution.
    pub rows: usize,
}

impl Provenance {
    /// A provenance record for `(layer, batch)` with mixed ownership,
    /// no serving GPU, and zero rows; refine with the builders.
    pub fn new(kind: ContribKind, layer: usize, batch: usize) -> Self {
        Provenance {
            kind,
            layer: layer as u32,
            batch: batch as u32,
            owner: PROV_MIXED,
            from: PROV_NONE,
            rows: 0,
        }
    }

    /// Sets the owning partition of the rows.
    pub fn owned_by(mut self, owner: usize) -> Self {
        self.owner = owner as u32;
        self
    }

    /// Sets the serving (fetch) or pushing (gradient) GPU.
    pub fn from_gpu(mut self, from: usize) -> Self {
        self.from = from as u32;
        self
    }

    /// Sets the row count.
    pub fn rows(mut self, rows: usize) -> Self {
        self.rows = rows;
        self
    }
}

/// One annotated access of an event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Access {
    /// What is touched.
    pub resource: ResourceId,
    /// Which part of it.
    pub region: Region,
    /// How.
    pub intent: Intent,
    /// Optional data generation (the batch index that produced/consumes
    /// the bytes). A read tagged `Some(g)` demands a happens-before write
    /// of generation `g` — this is what catches "slot not populated
    /// *this batch*" staleness that plain write-before-read would miss.
    pub gen: Option<u32>,
    /// Optional dataflow provenance for the conservation checker.
    pub prov: Option<Provenance>,
}

impl Access {
    /// A read access.
    pub fn read(resource: ResourceId, region: Region) -> Self {
        Access {
            resource,
            region,
            intent: Intent::Read,
            gen: None,
            prov: None,
        }
    }

    /// A write access.
    pub fn write(resource: ResourceId, region: Region) -> Self {
        Access {
            resource,
            region,
            intent: Intent::Write,
            gen: None,
            prov: None,
        }
    }

    /// An atomic-accumulate access.
    pub fn accum(resource: ResourceId, region: Region) -> Self {
        Access {
            resource,
            region,
            intent: Intent::Accum,
            gen: None,
            prov: None,
        }
    }

    /// Attaches a data generation.
    pub fn with_gen(mut self, gen: u32) -> Self {
        self.gen = Some(gen);
        self
    }

    /// Attaches dataflow provenance.
    pub fn with_prov(mut self, prov: Provenance) -> Self {
        self.prov = Some(prov);
        self
    }
}

/// One recorded operation.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Operation kind.
    pub kind: EventKind,
    /// Device the time was charged to.
    pub device: Device,
    /// Logical stream on the device (0 = default stream). Events on the
    /// same (device, stream) are program-ordered; distinct streams only
    /// order through barriers.
    pub stream: u8,
    /// Payload bytes (0 for compute/barrier).
    pub bytes: usize,
    /// Seconds charged.
    pub seconds: f64,
    /// Simulated timestamp at completion on the charged device.
    pub at: f64,
    /// Resource accesses this operation performs (empty = unannotated).
    pub accesses: Vec<Access>,
}

impl Event {
    /// An unannotated event on stream 0.
    pub fn new(kind: EventKind, device: Device, bytes: usize, seconds: f64, at: f64) -> Self {
        Event {
            kind,
            device,
            stream: 0,
            bytes,
            seconds,
            at,
            accesses: Vec::new(),
        }
    }

    /// Attaches access annotations.
    pub fn with_accesses(mut self, accesses: Vec<Access>) -> Self {
        self.accesses = accesses;
        self
    }

    /// Attaches a stream id.
    pub fn on_stream(mut self, stream: u8) -> Self {
        self.stream = stream;
        self
    }
}

/// An event log. Disabled by default; when enabled with a capacity it
/// keeps the most recent `capacity` events; [`Trace::unbounded`] keeps
/// everything (required for verification — a trace that evicted events
/// cannot be certified).
#[derive(Debug, Clone)]
pub struct Trace {
    events: std::collections::VecDeque<Event>,
    capacity: usize,
    enabled: bool,
    dropped: usize,
}

impl Trace {
    /// A disabled trace (records nothing).
    pub fn disabled() -> Self {
        Trace {
            events: Default::default(),
            capacity: 0,
            enabled: false,
            dropped: 0,
        }
    }

    /// An enabled trace holding up to `capacity` recent events.
    pub fn with_capacity(capacity: usize) -> Self {
        Trace {
            events: Default::default(),
            capacity,
            enabled: true,
            dropped: 0,
        }
    }

    /// An enabled trace that never evicts. Verification runs must use
    /// this: the happens-before checker refuses (diagnostic `R400`) to
    /// certify a trace with `dropped() > 0`, because evicted events could
    /// hide the very hazard being checked for.
    pub fn unbounded() -> Self {
        Trace {
            events: Default::default(),
            capacity: usize::MAX,
            enabled: true,
            dropped: 0,
        }
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Whether this trace never evicts events.
    pub fn is_unbounded(&self) -> bool {
        self.capacity == usize::MAX
    }

    /// Records an event (no-op when disabled).
    pub fn record(&mut self, e: Event) {
        if !self.enabled {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(e);
    }

    /// Recorded events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events are recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events evicted due to the capacity bound.
    pub fn dropped(&self) -> usize {
        self.dropped
    }

    /// Clears the log.
    pub fn clear(&mut self) {
        self.events.clear();
        self.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: EventKind, bytes: usize) -> Event {
        Event::new(kind, Device::Gpu(0), bytes, 1e-6, 0.0)
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::disabled();
        t.record(ev(EventKind::H2D, 10));
        assert_eq!(t.events().count(), 0);
        assert!(!t.is_enabled());
        assert!(t.is_empty());
    }

    #[test]
    fn capacity_bound_evicts_oldest() {
        let mut t = Trace::with_capacity(2);
        t.record(ev(EventKind::H2D, 1));
        t.record(ev(EventKind::D2D, 2));
        t.record(ev(EventKind::Reuse, 3));
        let kinds: Vec<_> = t.events().map(|e| e.kind).collect();
        assert_eq!(kinds, vec![EventKind::D2D, EventKind::Reuse]);
        assert_eq!(t.dropped(), 1);
        assert!(!t.is_unbounded());
    }

    #[test]
    fn unbounded_trace_never_drops() {
        let mut t = Trace::unbounded();
        for i in 0..10_000 {
            t.record(ev(EventKind::H2D, i));
        }
        assert_eq!(t.len(), 10_000);
        assert_eq!(t.dropped(), 0);
        assert!(t.is_unbounded());
    }

    #[test]
    fn clear_resets() {
        let mut t = Trace::with_capacity(4);
        t.record(ev(EventKind::Barrier(BarrierScope::Batch), 0));
        t.clear();
        assert_eq!(t.events().count(), 0);
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn region_overlap_rules() {
        use Region::*;
        assert!(All.overlaps(Owned));
        assert!(Owned.overlaps(All));
        assert!(!Owned.overlaps(Fetched));
        assert!(Chunk { gpu: 1, chunk: 2 }.overlaps(Chunk { gpu: 1, chunk: 2 }));
        assert!(!Chunk { gpu: 1, chunk: 2 }.overlaps(Chunk { gpu: 1, chunk: 3 }));
        assert!(!Part(0).overlaps(Part(1)));
        assert!(Part(2).overlaps(Part(2)));
        // Cross-variant: conservatively overlapping.
        assert!(Owned.overlaps(Chunk { gpu: 0, chunk: 0 }));
    }

    #[test]
    fn access_builders() {
        let r = ResourceId::DevRep { gpu: 3 };
        let a = Access::read(r, Region::Owned).with_gen(7);
        assert_eq!(a.intent, Intent::Read);
        assert_eq!(a.gen, Some(7));
        assert_eq!(a.prov, None);
        assert_eq!(Access::write(r, Region::All).intent, Intent::Write);
        assert_eq!(Access::accum(r, Region::All).intent, Intent::Accum);
    }

    #[test]
    fn provenance_builders() {
        let p = Provenance::new(ContribKind::Fetch, 1, 2)
            .owned_by(3)
            .from_gpu(3)
            .rows(40);
        assert_eq!(p.layer, 1);
        assert_eq!(p.batch, 2);
        assert_eq!(p.owner, 3);
        assert_eq!(p.from, 3);
        assert_eq!(p.rows, 40);

        let q = Provenance::new(ContribKind::HostLoad, 0, 0);
        assert_eq!(q.owner, PROV_MIXED);
        assert_eq!(q.from, PROV_NONE);
        assert_eq!(q.rows, 0);

        let r = ResourceId::DevRep { gpu: 0 };
        let a = Access::write(r, Region::Owned).with_prov(q);
        assert_eq!(a.prov, Some(q));
    }

    #[test]
    fn device_display_and_gpu() {
        assert_eq!(Device::Host.to_string(), "host");
        assert_eq!(Device::Gpu(2).to_string(), "gpu2");
        assert_eq!(Device::Gpu(2).gpu(), Some(2));
        assert_eq!(Device::Host.gpu(), None);
    }

    #[test]
    fn resource_display_mentions_identity() {
        assert_eq!(ResourceId::Rep { layer: 1 }.to_string(), "h^1");
        assert!(ResourceId::AggCache {
            layer: 0,
            gpu: 1,
            chunk: 2
        }
        .to_string()
        .contains("[0][1][2]"));
        assert!(ResourceId::Rep { layer: 0 }.initially_valid());
        assert!(!ResourceId::Rep { layer: 1 }.initially_valid());
        assert!(!ResourceId::DevRep { gpu: 0 }.initially_valid());
        // The hot-vertex cache mirrors immutable h^0: valid from the start.
        assert!(ResourceId::DevCache { gpu: 1 }.initially_valid());
        assert_eq!(
            ResourceId::DevCache { gpu: 1 }.to_string(),
            "gpu1 feature cache"
        );
    }

    #[test]
    fn staging_slots_are_distinct_resources() {
        let a = ResourceId::DevRepSlot { gpu: 1, slot: 0 };
        let b = ResourceId::DevRepSlot { gpu: 1, slot: 1 };
        assert_ne!(a, b);
        assert!(a.to_string().contains("slot 0"));
        assert!(ResourceId::DevGradSlot { gpu: 2, slot: 1 }
            .to_string()
            .contains("gpu2 grad staging slot 1"));
        assert!(!a.initially_valid());
    }
}
