//! Optional event trace for debugging and for the bench harness's
//! communication-volume reports.

/// The kind of a simulated operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// Host → GPU transfer.
    H2D,
    /// GPU → host transfer.
    D2H,
    /// GPU → GPU transfer.
    D2D,
    /// Intra-GPU data reuse (buffer-to-buffer at HBM speed).
    Reuse,
    /// GPU compute.
    GpuCompute,
    /// CPU compute.
    CpuCompute,
    /// Barrier synchronization.
    Barrier,
}

/// One recorded operation.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Operation kind.
    pub kind: EventKind,
    /// Device the time was charged to (GPU index; `usize::MAX` = host).
    pub device: usize,
    /// Payload bytes (0 for compute/barrier).
    pub bytes: usize,
    /// Seconds charged.
    pub seconds: f64,
    /// Simulated timestamp at completion on the charged device.
    pub at: f64,
}

/// A bounded event log. Disabled by default; when enabled it keeps the most
/// recent `capacity` events.
#[derive(Debug, Clone)]
pub struct Trace {
    events: std::collections::VecDeque<Event>,
    capacity: usize,
    enabled: bool,
    dropped: usize,
}

impl Trace {
    /// A disabled trace (records nothing).
    pub fn disabled() -> Self {
        Trace {
            events: Default::default(),
            capacity: 0,
            enabled: false,
            dropped: 0,
        }
    }

    /// An enabled trace holding up to `capacity` recent events.
    pub fn with_capacity(capacity: usize) -> Self {
        Trace {
            events: Default::default(),
            capacity,
            enabled: true,
            dropped: 0,
        }
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an event (no-op when disabled).
    pub fn record(&mut self, e: Event) {
        if !self.enabled {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(e);
    }

    /// Recorded events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    /// Number of events evicted due to the capacity bound.
    pub fn dropped(&self) -> usize {
        self.dropped
    }

    /// Clears the log.
    pub fn clear(&mut self) {
        self.events.clear();
        self.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: EventKind, bytes: usize) -> Event {
        Event {
            kind,
            device: 0,
            bytes,
            seconds: 1e-6,
            at: 0.0,
        }
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::disabled();
        t.record(ev(EventKind::H2D, 10));
        assert_eq!(t.events().count(), 0);
        assert!(!t.is_enabled());
    }

    #[test]
    fn capacity_bound_evicts_oldest() {
        let mut t = Trace::with_capacity(2);
        t.record(ev(EventKind::H2D, 1));
        t.record(ev(EventKind::D2D, 2));
        t.record(ev(EventKind::Reuse, 3));
        let kinds: Vec<_> = t.events().map(|e| e.kind).collect();
        assert_eq!(kinds, vec![EventKind::D2D, EventKind::Reuse]);
        assert_eq!(t.dropped(), 1);
    }

    #[test]
    fn clear_resets() {
        let mut t = Trace::with_capacity(4);
        t.record(ev(EventKind::Barrier, 0));
        t.clear();
        assert_eq!(t.events().count(), 0);
        assert_eq!(t.dropped(), 0);
    }
}
