//! Device memory accounting.

use std::fmt;

/// Simulator errors.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// An allocation exceeded device capacity — the condition reported as
    /// "OOM" in the paper's comparison tables.
    OutOfMemory {
        /// Device name (e.g. `GPU2`, `host`).
        device: String,
        /// What the failing allocation was for.
        label: String,
        /// Bytes requested.
        requested: usize,
        /// Bytes already in use.
        in_use: usize,
        /// Device capacity in bytes.
        capacity: usize,
    },
    /// Reference to a device that does not exist.
    NoSuchDevice {
        /// Requested device index.
        index: usize,
        /// Number of devices configured.
        available: usize,
    },
    /// A precomputed execution plan failed static verification (the
    /// engine refuses to run a plan that would corrupt training data).
    InvalidPlan {
        /// The first diagnostic's stable code (e.g. `B201`).
        code: String,
        /// Rendered diagnostic report.
        message: String,
    },
    /// An executed schedule failed the happens-before trace checker (a
    /// race or ordering hazard in the recorded multi-GPU event trace).
    InvalidSchedule {
        /// The first diagnostic's stable code (e.g. `R402`).
        code: String,
        /// Rendered diagnostic report.
        message: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::OutOfMemory {
                device,
                label,
                requested,
                in_use,
                capacity,
            } => write!(
                f,
                "{device}: out of memory allocating {requested} B for {label} \
                 ({in_use} B in use of {capacity} B)"
            ),
            SimError::NoSuchDevice { index, available } => {
                write!(f, "device {index} does not exist ({available} configured)")
            }
            SimError::InvalidPlan { code, message } => {
                write!(f, "invalid execution plan [{code}]: {message}")
            }
            SimError::InvalidSchedule { code, message } => {
                write!(f, "invalid execution schedule [{code}]: {message}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Tracks allocations against a fixed capacity, recording the peak.
#[derive(Debug, Clone)]
pub struct MemoryTracker {
    name: String,
    capacity: usize,
    in_use: usize,
    peak: usize,
}

impl MemoryTracker {
    /// A tracker for device `name` with `capacity` bytes.
    pub fn new(name: impl Into<String>, capacity: usize) -> Self {
        MemoryTracker {
            name: name.into(),
            capacity,
            in_use: 0,
            peak: 0,
        }
    }

    /// Charges `bytes`; fails with [`SimError::OutOfMemory`] if it exceeds
    /// capacity.
    pub fn alloc(&mut self, bytes: usize, label: &str) -> Result<(), SimError> {
        if self.in_use + bytes > self.capacity {
            return Err(SimError::OutOfMemory {
                device: self.name.clone(),
                label: label.to_string(),
                requested: bytes,
                in_use: self.in_use,
                capacity: self.capacity,
            });
        }
        self.in_use += bytes;
        self.peak = self.peak.max(self.in_use);
        Ok(())
    }

    /// Releases `bytes`.
    ///
    /// # Panics
    /// Panics if more is freed than allocated — a double-free in the engine.
    pub fn free(&mut self, bytes: usize) {
        assert!(
            bytes <= self.in_use,
            "{}: freeing {bytes} B but only {} B allocated",
            self.name,
            self.in_use
        );
        self.in_use -= bytes;
    }

    /// Bytes currently allocated.
    pub fn in_use(&self) -> usize {
        self.in_use
    }

    /// High-water mark.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Remaining bytes.
    pub fn available(&self) -> usize {
        self.capacity - self.in_use
    }

    /// Device name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Resets the peak to the current usage (e.g. after warm-up).
    pub fn reset_peak(&mut self) {
        self.peak = self.in_use;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_cycle() {
        let mut t = MemoryTracker::new("GPU0", 100);
        t.alloc(60, "a").unwrap();
        t.alloc(40, "b").unwrap();
        assert_eq!(t.in_use(), 100);
        assert_eq!(t.available(), 0);
        t.free(60);
        assert_eq!(t.in_use(), 40);
        assert_eq!(t.peak(), 100);
    }

    #[test]
    fn oom_carries_context() {
        let mut t = MemoryTracker::new("GPU1", 100);
        t.alloc(80, "base").unwrap();
        let err = t.alloc(30, "intermediate").unwrap_err();
        match &err {
            SimError::OutOfMemory {
                device,
                label,
                requested,
                in_use,
                capacity,
            } => {
                assert_eq!(device, "GPU1");
                assert_eq!(label, "intermediate");
                assert_eq!((*requested, *in_use, *capacity), (30, 80, 100));
            }
            other => panic!("unexpected {other:?}"),
        }
        let msg = err.to_string();
        assert!(msg.contains("GPU1") && msg.contains("intermediate"));
        // Failed allocation must not change accounting.
        assert_eq!(t.in_use(), 80);
    }

    #[test]
    fn exact_fit_succeeds() {
        let mut t = MemoryTracker::new("d", 10);
        assert!(t.alloc(10, "x").is_ok());
        assert!(t.alloc(1, "y").is_err());
    }

    #[test]
    #[should_panic(expected = "freeing")]
    fn double_free_panics() {
        let mut t = MemoryTracker::new("d", 10);
        t.alloc(5, "x").unwrap();
        t.free(6);
    }

    #[test]
    fn peak_tracks_high_water() {
        let mut t = MemoryTracker::new("d", 100);
        t.alloc(70, "x").unwrap();
        t.free(70);
        t.alloc(20, "y").unwrap();
        assert_eq!(t.peak(), 70);
        t.reset_peak();
        assert_eq!(t.peak(), 20);
    }
}
