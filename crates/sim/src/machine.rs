//! The simulated machine: per-GPU clocks, memory trackers, and the
//! time/volume accounting that backs every performance number in the
//! benchmark harness.

use crate::config::MachineConfig;
use crate::memory::{MemoryTracker, SimError};
use crate::shard::{GpuShard, Timeline};
use crate::trace::{Access, BarrierScope, Device, Event, EventKind, Trace};

/// Number of hardware streams modeled per GPU. Stream 0 is the compute /
/// default stream; the overlap executor issues H2D prefetches on stream 1
/// (copy-in) and D2H drains on stream 2 (copy-out). Streams advance
/// independent clocks that only join at cross-stream waits
/// ([`EventKind::StreamWait`]) and barriers, so a GPU's time at a barrier
/// is the *maximum* over its streams — `max(transfer, compute)` instead of
/// their sum, the overlap discipline of the paper's §6 implementation.
pub const NUM_STREAMS: usize = 3;

/// Time attributed to each of the paper's breakdown components (Figure 9),
/// in seconds, plus the transferred byte volumes.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TimeBuckets {
    /// Host↔GPU communication time (H2D + D2H; the paper's "H2D" bar).
    pub h2d: f64,
    /// Inter-GPU communication time (the paper's "D2D" bar).
    pub d2d: f64,
    /// GPU compute time.
    pub gpu: f64,
    /// CPU compute time (host-side gradient accumulation).
    pub cpu: f64,
    /// Intra-GPU reuse time (tiny; folded into "GPU" in the paper's plots).
    pub reuse: f64,
    /// Host→GPU bytes.
    pub bytes_h2d: u64,
    /// GPU→host bytes.
    pub bytes_d2h: u64,
    /// GPU↔GPU bytes.
    pub bytes_d2d: u64,
    /// Bytes served by intra-GPU reuse instead of a transfer.
    pub bytes_reuse: u64,
}

impl TimeBuckets {
    /// Total attributed time (sum over devices, not the critical path).
    pub fn total_time(&self) -> f64 {
        self.h2d + self.d2d + self.gpu + self.cpu + self.reuse
    }

    /// Total communication time (H2D + D2D), the quantity §7.3 reports.
    pub fn comm_time(&self) -> f64 {
        self.h2d + self.d2d
    }

    /// Element-wise accumulation.
    pub fn add(&mut self, other: &TimeBuckets) {
        self.h2d += other.h2d;
        self.d2d += other.d2d;
        self.gpu += other.gpu;
        self.cpu += other.cpu;
        self.reuse += other.reuse;
        self.bytes_h2d += other.bytes_h2d;
        self.bytes_d2h += other.bytes_d2h;
        self.bytes_d2d += other.bytes_d2d;
        self.bytes_reuse += other.bytes_reuse;
    }
}

/// The simulated multi-GPU machine.
#[derive(Debug, Clone)]
pub struct Machine {
    config: MachineConfig,
    gpus: Vec<MemoryTracker>,
    host: MemoryTracker,
    clocks: Vec<[f64; NUM_STREAMS]>,
    stream: u8,
    buckets: TimeBuckets,
    trace: Trace,
    pending: Vec<Access>,
}

impl Machine {
    /// Builds a machine from a validated config.
    ///
    /// # Panics
    /// Panics if the config is invalid (see [`MachineConfig::validate`]).
    pub fn new(config: MachineConfig) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid MachineConfig: {e}"));
        let gpus = (0..config.num_gpus)
            .map(|i| MemoryTracker::new(format!("GPU{i}"), config.gpu_memory))
            .collect();
        let host = MemoryTracker::new("host", config.host_memory);
        let clocks = vec![[0.0; NUM_STREAMS]; config.num_gpus];
        Machine {
            config,
            gpus,
            host,
            clocks,
            stream: 0,
            buckets: TimeBuckets::default(),
            trace: Trace::disabled(),
            pending: Vec::new(),
        }
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Number of GPUs.
    pub fn num_gpus(&self) -> usize {
        self.config.num_gpus
    }

    /// Enables event tracing with the given capacity.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Trace::with_capacity(capacity);
    }

    /// Enables unbounded event tracing (required for trace certification —
    /// see [`Trace::unbounded`]).
    pub fn enable_unbounded_trace(&mut self) {
        self.trace = Trace::unbounded();
    }

    /// The event trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Swaps in a different trace, returning the previous one. Lets a
    /// verification run temporarily install an unbounded trace without
    /// discarding the user's.
    pub fn replace_trace(&mut self, trace: Trace) -> Trace {
        self.pending.clear();
        std::mem::replace(&mut self.trace, trace)
    }

    /// Stages access annotations for the *next* charged operation. The
    /// annotations are attached to the next recorded event and cleared.
    /// No-op while tracing is disabled, so annotation is free on the
    /// benchmark path.
    pub fn tag<I: IntoIterator<Item = Access>>(&mut self, accesses: I) {
        if !self.trace.is_enabled() {
            return;
        }
        self.pending.extend(accesses);
    }

    fn check_gpu(&self, gpu: usize) -> Result<(), SimError> {
        if gpu >= self.gpus.len() {
            Err(SimError::NoSuchDevice {
                index: gpu,
                available: self.gpus.len(),
            })
        } else {
            Ok(())
        }
    }

    fn record(&mut self, kind: EventKind, device: Device, bytes: usize, seconds: f64) {
        if !self.trace.is_enabled() {
            return;
        }
        let cur = self.stream as usize;
        let at = match device {
            Device::Gpu(g) if (g as usize) < self.clocks.len() => self.clocks[g as usize][cur],
            _ => 0.0,
        };
        let accesses = std::mem::take(&mut self.pending);
        self.trace.record(
            Event::new(kind, device, bytes, seconds, at)
                .on_stream(self.stream)
                .with_accesses(accesses),
        );
    }

    // ---- memory ----

    /// Allocates `bytes` on GPU `gpu`.
    pub fn alloc(&mut self, gpu: usize, bytes: usize, label: &str) -> Result<(), SimError> {
        self.check_gpu(gpu)?;
        self.gpus[gpu].alloc(bytes, label)
    }

    /// Frees `bytes` on GPU `gpu`.
    pub fn free(&mut self, gpu: usize, bytes: usize) {
        self.gpus[gpu].free(bytes);
    }

    /// Allocates `bytes` of host memory.
    pub fn host_alloc(&mut self, bytes: usize, label: &str) -> Result<(), SimError> {
        self.host.alloc(bytes, label)
    }

    /// Frees `bytes` of host memory.
    pub fn host_free(&mut self, bytes: usize) {
        self.host.free(bytes);
    }

    /// Memory tracker of GPU `gpu`.
    pub fn gpu_memory(&self, gpu: usize) -> &MemoryTracker {
        &self.gpus[gpu]
    }

    /// Host memory tracker.
    pub fn host_memory(&self) -> &MemoryTracker {
        &self.host
    }

    /// Largest per-GPU peak allocation across all GPUs.
    pub fn max_gpu_peak(&self) -> usize {
        self.gpus.iter().map(|g| g.peak()).max().unwrap_or(0)
    }

    // ---- time ----

    /// Charges a host→GPU transfer of `bytes` to GPU `gpu`'s clock.
    /// Returns the seconds charged.
    pub fn h2d(&mut self, gpu: usize, bytes: usize) -> f64 {
        let t = self.config.pcie_transfer_seconds(bytes);
        self.clocks[gpu][self.stream as usize] += t;
        self.buckets.h2d += t;
        self.buckets.bytes_h2d += bytes as u64;
        self.record(EventKind::H2D, Device::Gpu(gpu as u32), bytes, t);
        t
    }

    /// Charges a host→GPU transfer where `remote_bytes` of the payload
    /// live on the other NUMA socket and pay the QPI penalty. Used by the
    /// vanilla offloading baseline, whose per-chunk transfers pull
    /// neighbors from whichever socket owns them (§7.3: deduplication
    /// "eliminates the remote neighbor access across CPUs").
    pub fn h2d_mixed(&mut self, gpu: usize, bytes: usize, remote_bytes: usize) -> f64 {
        let t = self.config.mixed_pcie_transfer_seconds(bytes, remote_bytes);
        self.clocks[gpu][self.stream as usize] += t;
        self.buckets.h2d += t;
        self.buckets.bytes_h2d += bytes as u64;
        self.record(EventKind::H2D, Device::Gpu(gpu as u32), bytes, t);
        t
    }

    /// GPU→host counterpart of [`Machine::h2d_mixed`].
    pub fn d2h_mixed(&mut self, gpu: usize, bytes: usize, remote_bytes: usize) -> f64 {
        let t = self.config.mixed_pcie_transfer_seconds(bytes, remote_bytes);
        self.clocks[gpu][self.stream as usize] += t;
        self.buckets.h2d += t;
        self.buckets.bytes_d2h += bytes as u64;
        self.record(EventKind::D2H, Device::Gpu(gpu as u32), bytes, t);
        t
    }

    /// Charges a GPU→host transfer of `bytes` to GPU `gpu`'s clock.
    pub fn d2h(&mut self, gpu: usize, bytes: usize) -> f64 {
        let t = self.config.pcie_transfer_seconds(bytes);
        self.clocks[gpu][self.stream as usize] += t;
        self.buckets.h2d += t;
        self.buckets.bytes_d2h += bytes as u64;
        self.record(EventKind::D2H, Device::Gpu(gpu as u32), bytes, t);
        t
    }

    /// Charges a GPU↔GPU transfer of `bytes` between `src` and `dst` to the
    /// *initiating* GPU `dst` (pull semantics, matching the paper's
    /// forward-pass fetch_from_gpu).
    pub fn d2d(&mut self, _src: usize, dst: usize, bytes: usize) -> f64 {
        let t = self.config.nvlink_transfer_seconds(bytes);
        self.clocks[dst][self.stream as usize] += t;
        self.buckets.d2d += t;
        self.buckets.bytes_d2d += bytes as u64;
        self.record(EventKind::D2D, Device::Gpu(dst as u32), bytes, t);
        t
    }

    /// Charges an intra-GPU reuse of `bytes` (buffer-local copy at HBM
    /// speed) to GPU `gpu`.
    pub fn reuse(&mut self, gpu: usize, bytes: usize) -> f64 {
        let t = self.config.reuse_seconds(bytes);
        self.clocks[gpu][self.stream as usize] += t;
        self.buckets.reuse += t;
        self.buckets.bytes_reuse += bytes as u64;
        self.record(EventKind::Reuse, Device::Gpu(gpu as u32), bytes, t);
        t
    }

    /// Charges `flops` of dense (matmul-like) GPU work to GPU `gpu`.
    pub fn gpu_dense(&mut self, gpu: usize, flops: f64) -> f64 {
        let t = self.config.gpu_dense_seconds(flops);
        self.clocks[gpu][self.stream as usize] += t;
        self.buckets.gpu += t;
        self.record(EventKind::GpuCompute, Device::Gpu(gpu as u32), 0, t);
        t
    }

    /// Charges `flops` of irregular edge-parallel GPU work to GPU `gpu`.
    pub fn gpu_edge(&mut self, gpu: usize, flops: f64) -> f64 {
        let t = self.config.gpu_edge_seconds(flops);
        self.clocks[gpu][self.stream as usize] += t;
        self.buckets.gpu += t;
        self.record(EventKind::GpuCompute, Device::Gpu(gpu as u32), 0, t);
        t
    }

    /// Charges `flops` of CPU work; the time is serialized onto GPU
    /// `waiting_gpu`'s timeline (the paper's CPU-side gradient accumulation
    /// happens between batches, blocking the owner GPU's next step). All
    /// GPUs' host-side work contends for the same CPUs, so the effective
    /// throughput is divided by the GPU count.
    pub fn cpu_compute(&mut self, waiting_gpu: usize, flops: f64) -> f64 {
        let t = self.config.cpu_compute_seconds(flops);
        self.clocks[waiting_gpu][self.stream as usize] += t;
        self.buckets.cpu += t;
        self.record(EventKind::CpuCompute, Device::Gpu(waiting_gpu as u32), 0, t);
        t
    }

    /// Charges a host-side gradient accumulation of `bytes` (read old,
    /// add, write back — three memory touches per byte) to GPU
    /// `waiting_gpu`'s timeline. Host memory bandwidth is shared by all
    /// GPUs' accumulation streams, which is why the paper measures the
    /// CPU component at 8–30% of the epoch.
    pub fn cpu_accumulate(&mut self, waiting_gpu: usize, bytes: usize) -> f64 {
        let t = self.config.cpu_accumulate_seconds(bytes);
        self.clocks[waiting_gpu][self.stream as usize] += t;
        self.buckets.cpu += t;
        self.record(
            EventKind::CpuCompute,
            Device::Gpu(waiting_gpu as u32),
            bytes,
            t,
        );
        t
    }

    /// Synchronizes all GPU clocks to the maximum (batch barrier).
    /// Shorthand for [`Machine::sync`] with [`BarrierScope::Batch`].
    pub fn barrier(&mut self) {
        self.sync(BarrierScope::Batch);
    }

    /// Synchronizes all GPU clocks to the maximum and records a barrier
    /// event of the given scope. The scope does not change the timing
    /// model — every barrier joins all clocks, *across every stream* —
    /// but tells the schedule checker what protocol role the barrier
    /// plays. The stream cursor returns to the default stream.
    pub fn sync(&mut self, scope: BarrierScope) {
        let max = self.elapsed();
        for c in &mut self.clocks {
            *c = [max; NUM_STREAMS];
        }
        self.stream = 0;
        // Barriers synchronize devices; they carry no accesses of their own.
        self.pending.clear();
        self.record(EventKind::Barrier(scope), Device::Host, 0, 0.0);
    }

    /// Selects the stream subsequent charges are issued on (and their
    /// events tagged with). Stream 0 is the compute/default stream; see
    /// [`NUM_STREAMS`].
    ///
    /// # Panics
    /// Panics if `stream >= NUM_STREAMS`.
    pub fn set_stream(&mut self, stream: u8) {
        assert!(
            (stream as usize) < NUM_STREAMS,
            "stream {stream} out of range (NUM_STREAMS = {NUM_STREAMS})"
        );
        self.stream = stream;
    }

    /// Makes GPU `gpu`'s *current* stream wait for everything issued so
    /// far on its `upstream` stream (the `cudaStreamWaitEvent` analogue):
    /// the current stream's clock joins up to the upstream clock, and a
    /// [`EventKind::StreamWait`] event is recorded so the happens-before
    /// checker orders subsequent work after the upstream's.
    pub fn stream_wait(&mut self, gpu: usize, upstream: u8) {
        let cur = self.stream as usize;
        let up = upstream as usize;
        self.clocks[gpu][cur] = self.clocks[gpu][cur].max(self.clocks[gpu][up]);
        self.record(
            EventKind::StreamWait { upstream },
            Device::Gpu(gpu as u32),
            0,
            0.0,
        );
    }

    /// Current simulated time: the furthest-ahead GPU stream clock.
    pub fn elapsed(&self) -> f64 {
        self.clocks
            .iter()
            .flat_map(|c| c.iter().copied())
            .fold(0.0, f64::max)
    }

    /// GPU `gpu`'s own clock: the furthest-ahead of its streams.
    pub fn clock(&self, gpu: usize) -> f64 {
        self.clocks[gpu].iter().copied().fold(0.0, f64::max)
    }

    /// GPU `gpu`'s clock on one specific stream.
    pub fn stream_clock(&self, gpu: usize, stream: u8) -> f64 {
        self.clocks[gpu][stream as usize]
    }

    /// Accumulated per-component times and volumes.
    pub fn buckets(&self) -> TimeBuckets {
        self.buckets
    }

    /// Zeroes clocks and buckets; memory state and peaks are kept.
    pub fn reset_time(&mut self) {
        for c in &mut self.clocks {
            *c = [0.0; NUM_STREAMS];
        }
        self.stream = 0;
        self.buckets = TimeBuckets::default();
        self.trace.clear();
    }

    // ---- parallel execution ----

    /// Splits the machine into one [`GpuShard`] per GPU so worker threads
    /// can charge their GPU's timeline without sharing state. Each shard
    /// takes ownership of its GPU's clock and memory tracker; the machine
    /// keeps the host tracker, accumulated buckets, and the trace.
    ///
    /// Call only at a phase boundary (no staged annotations) and pair with
    /// [`Machine::join_shards`] before any further charging.
    pub fn fork_shards(&mut self) -> Vec<GpuShard> {
        debug_assert!(
            self.pending.is_empty(),
            "fork_shards with staged access annotations"
        );
        let tracing = self.trace.is_enabled();
        (0..self.config.num_gpus)
            .map(|i| GpuShard {
                gpu: i,
                config: self.config.clone(),
                clock: self.clocks[i],
                stream: 0,
                buckets: TimeBuckets::default(),
                memory: std::mem::replace(&mut self.gpus[i], MemoryTracker::new("forked", 0)),
                tracing,
                events: Vec::new(),
                pending: Vec::new(),
                deferred_stalls: Vec::new(),
            })
            .collect()
    }

    /// Merges shards produced by [`Machine::fork_shards`] back into the
    /// machine **in GPU index order**: clocks and memory trackers are
    /// restored, per-shard buckets accumulated, and each shard's events
    /// appended to the trace GPU 0 first — the same order the sequential
    /// executor emits them, so phased schedules produce bitwise-identical
    /// traces. Deferred [`Timeline::source_stall`] charges are applied
    /// last.
    ///
    /// # Panics
    /// Panics if the shards are not exactly this machine's GPUs in order.
    pub fn join_shards(&mut self, shards: Vec<GpuShard>) {
        assert_eq!(
            shards.len(),
            self.config.num_gpus,
            "join_shards: expected {} shards, got {}",
            self.config.num_gpus,
            shards.len()
        );
        let mut stalls = Vec::new();
        for (i, shard) in shards.into_iter().enumerate() {
            assert_eq!(shard.gpu, i, "join_shards: shard {i} out of order");
            debug_assert!(
                shard.pending.is_empty(),
                "join_shards: shard {i} has staged annotations"
            );
            self.clocks[i] = shard.clock;
            self.buckets.add(&shard.buckets);
            self.gpus[i] = shard.memory;
            if self.trace.is_enabled() {
                for ev in shard.events {
                    self.trace.record(ev);
                }
            }
            stalls.extend(shard.deferred_stalls);
        }
        for (src, bytes) in stalls {
            self.d2d(src, src, bytes);
        }
    }
}

/// [`Machine`] charges its own clocks directly; `source_stall` is the
/// naive-schedule serving stall, charged inline as a `d2d(src, src, ·)`.
impl Timeline for Machine {
    fn machine_config(&self) -> &MachineConfig {
        &self.config
    }

    fn tag<I: IntoIterator<Item = Access>>(&mut self, accesses: I) {
        Machine::tag(self, accesses)
    }

    fn set_stream(&mut self, stream: u8) {
        Machine::set_stream(self, stream)
    }

    fn stream_wait(&mut self, gpu: usize, upstream: u8) {
        Machine::stream_wait(self, gpu, upstream)
    }

    fn alloc(&mut self, gpu: usize, bytes: usize, label: &str) -> Result<(), SimError> {
        Machine::alloc(self, gpu, bytes, label)
    }

    fn free(&mut self, gpu: usize, bytes: usize) {
        Machine::free(self, gpu, bytes)
    }

    fn h2d(&mut self, gpu: usize, bytes: usize) -> f64 {
        Machine::h2d(self, gpu, bytes)
    }

    fn h2d_mixed(&mut self, gpu: usize, bytes: usize, remote_bytes: usize) -> f64 {
        Machine::h2d_mixed(self, gpu, bytes, remote_bytes)
    }

    fn d2h(&mut self, gpu: usize, bytes: usize) -> f64 {
        Machine::d2h(self, gpu, bytes)
    }

    fn d2h_mixed(&mut self, gpu: usize, bytes: usize, remote_bytes: usize) -> f64 {
        Machine::d2h_mixed(self, gpu, bytes, remote_bytes)
    }

    fn d2d(&mut self, src: usize, dst: usize, bytes: usize) -> f64 {
        Machine::d2d(self, src, dst, bytes)
    }

    fn source_stall(&mut self, src: usize, bytes: usize) {
        Machine::d2d(self, src, src, bytes);
    }

    fn reuse(&mut self, gpu: usize, bytes: usize) -> f64 {
        Machine::reuse(self, gpu, bytes)
    }

    fn gpu_dense(&mut self, gpu: usize, flops: f64) -> f64 {
        Machine::gpu_dense(self, gpu, flops)
    }

    fn gpu_edge(&mut self, gpu: usize, flops: f64) -> f64 {
        Machine::gpu_edge(self, gpu, flops)
    }

    fn cpu_compute(&mut self, waiting_gpu: usize, flops: f64) -> f64 {
        Machine::cpu_compute(self, waiting_gpu, flops)
    }

    fn cpu_accumulate(&mut self, waiting_gpu: usize, bytes: usize) -> f64 {
        Machine::cpu_accumulate(self, waiting_gpu, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> Machine {
        Machine::new(MachineConfig::scaled(4, 1 << 20))
    }

    #[test]
    fn transfer_times_match_bandwidth_model() {
        let mut m = machine();
        let cfg = m.config().clone();
        let t = m.h2d(0, 1_000_000);
        assert!((t - (cfg.pcie_latency + 1_000_000.0 / cfg.pcie_bw)).abs() < 1e-12);
        let t2 = m.d2d(0, 1, 1_000_000);
        assert!(t2 < t, "NVLink must be faster than PCIe");
        let t3 = m.reuse(1, 1_000_000);
        assert!(t3 < t2, "reuse must be faster than NVLink");
    }

    #[test]
    fn clocks_are_per_gpu_until_barrier() {
        let mut m = machine();
        m.h2d(0, 1_000_000);
        assert!(m.clock(0) > 0.0);
        assert_eq!(m.clock(1), 0.0);
        m.barrier();
        assert_eq!(m.clock(1), m.clock(0));
        assert_eq!(m.elapsed(), m.clock(0));
    }

    #[test]
    fn buckets_accumulate_by_kind() {
        let mut m = machine();
        m.h2d(0, 100);
        m.d2h(1, 50);
        m.d2d(0, 2, 200);
        m.reuse(3, 400);
        m.gpu_dense(0, 1e9);
        m.cpu_compute(0, 1e9);
        let b = m.buckets();
        assert!(b.h2d > 0.0 && b.d2d > 0.0 && b.gpu > 0.0 && b.cpu > 0.0 && b.reuse > 0.0);
        assert_eq!(b.bytes_h2d, 100);
        assert_eq!(b.bytes_d2h, 50);
        assert_eq!(b.bytes_d2d, 200);
        assert_eq!(b.bytes_reuse, 400);
        assert!(b.total_time() > b.comm_time());
    }

    #[test]
    fn edge_compute_slower_than_dense() {
        let mut m = machine();
        let td = m.gpu_dense(0, 1e9);
        let te = m.gpu_edge(0, 1e9);
        assert!(te > td);
    }

    #[test]
    fn oom_is_reported_not_panicked() {
        let mut m = Machine::new(MachineConfig::scaled(2, 1000));
        assert!(m.alloc(0, 600, "a").is_ok());
        let err = m.alloc(0, 600, "b").unwrap_err();
        assert!(matches!(err, SimError::OutOfMemory { .. }));
        // Other GPU unaffected.
        assert!(m.alloc(1, 600, "c").is_ok());
        m.free(0, 600);
        assert!(m.alloc(0, 600, "b").is_ok());
        assert_eq!(m.max_gpu_peak(), 600);
    }

    #[test]
    fn invalid_gpu_index_is_an_error() {
        let mut m = machine();
        assert!(matches!(
            m.alloc(9, 1, "x"),
            Err(SimError::NoSuchDevice {
                index: 9,
                available: 4
            })
        ));
    }

    #[test]
    fn reset_time_keeps_memory() {
        let mut m = machine();
        m.alloc(0, 512, "x").unwrap();
        m.h2d(0, 100);
        m.reset_time();
        assert_eq!(m.elapsed(), 0.0);
        assert_eq!(m.buckets(), TimeBuckets::default());
        assert_eq!(m.gpu_memory(0).in_use(), 512);
    }

    #[test]
    fn single_gpu_machine_pays_numa_penalty() {
        let mut m4 = Machine::new(MachineConfig::scaled(4, 1 << 20));
        let mut m1 = Machine::new(MachineConfig::scaled(1, 1 << 20));
        let t4 = m4.h2d(0, 10_000_000);
        let t1 = m1.h2d(0, 10_000_000);
        assert!(t1 > t4, "1-GPU config must pay remote-socket penalty");
    }

    #[test]
    fn trace_records_when_enabled() {
        let mut m = machine();
        m.enable_trace(16);
        m.h2d(0, 10);
        m.barrier();
        let kinds: Vec<_> = m.trace().events().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![EventKind::H2D, EventKind::Barrier(BarrierScope::Batch)]
        );
        let devices: Vec<_> = m.trace().events().map(|e| e.device).collect();
        assert_eq!(devices, vec![Device::Gpu(0), Device::Host]);
    }

    #[test]
    fn tag_annotates_exactly_the_next_event() {
        use crate::trace::{Region, ResourceId};
        let mut m = machine();
        m.enable_unbounded_trace();
        let a = Access::read(ResourceId::Rep { layer: 0 }, Region::All);
        m.tag([a]);
        m.h2d(0, 10);
        m.h2d(1, 10);
        let evs: Vec<_> = m.trace().events().collect();
        assert_eq!(evs[0].accesses, vec![a]);
        assert!(evs[1].accesses.is_empty());
    }

    #[test]
    fn sync_scopes_are_recorded() {
        let mut m = machine();
        m.enable_unbounded_trace();
        m.sync(BarrierScope::Phase);
        m.sync(BarrierScope::Epoch);
        let kinds: Vec<_> = m.trace().events().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                EventKind::Barrier(BarrierScope::Phase),
                EventKind::Barrier(BarrierScope::Epoch)
            ]
        );
    }

    #[test]
    fn tag_is_dropped_without_tracing_and_by_barriers() {
        use crate::trace::{Region, ResourceId};
        let mut m = machine();
        // Disabled trace: tag is a no-op (nothing staged, nothing leaks
        // once tracing is enabled later).
        m.tag([Access::write(ResourceId::DevRep { gpu: 0 }, Region::All)]);
        m.enable_unbounded_trace();
        // Barriers clear staged annotations rather than carrying them.
        m.tag([Access::write(ResourceId::DevRep { gpu: 0 }, Region::All)]);
        m.barrier();
        m.h2d(0, 4);
        let evs: Vec<_> = m.trace().events().collect();
        assert!(evs.iter().all(|e| e.accesses.is_empty()));
    }

    #[test]
    fn replace_trace_swaps_and_restores() {
        let mut m = machine();
        m.enable_trace(4);
        m.h2d(0, 1);
        let user = m.replace_trace(Trace::unbounded());
        assert_eq!(user.len(), 1);
        m.h2d(0, 2);
        assert_eq!(m.trace().len(), 1);
        assert!(m.trace().is_unbounded());
        let verification = m.replace_trace(user);
        assert_eq!(verification.len(), 1);
        assert_eq!(m.trace().len(), 1);
    }

    #[test]
    fn forked_shards_replay_identically_to_sequential() {
        // Charge the same per-GPU schedule once on the machine, once
        // through shards; clocks, buckets, and trace must match bitwise.
        let charge = |t: &mut dyn FnMut(usize)| {
            for g in 0..4 {
                t(g);
            }
        };
        let mut seq = machine();
        seq.enable_unbounded_trace();
        charge(&mut |g| {
            seq.h2d(g, 1000 * (g + 1));
            seq.gpu_dense(g, 1e9 * (g + 1) as f64);
            seq.d2h(g, 500);
        });

        let mut par = machine();
        par.enable_unbounded_trace();
        let mut shards = par.fork_shards();
        // Charge shards in *reverse* GPU order to model an arbitrary
        // thread schedule; the join restores GPU-index order.
        for shard in shards.iter_mut().rev() {
            let g = shard.gpu();
            shard.h2d(g, 1000 * (g + 1));
            shard.gpu_dense(g, 1e9 * (g + 1) as f64);
            shard.d2h(g, 500);
        }
        par.join_shards(shards);

        for g in 0..4 {
            assert_eq!(seq.clock(g), par.clock(g), "clock of GPU {g}");
        }
        assert_eq!(seq.buckets(), par.buckets());
        let seq_ev: Vec<_> = seq.trace().events().collect();
        let par_ev: Vec<_> = par.trace().events().collect();
        assert_eq!(seq_ev, par_ev);
    }

    #[test]
    fn shards_own_memory_during_fork() {
        let mut m = machine();
        m.alloc(0, 100, "pre").unwrap();
        let mut shards = m.fork_shards();
        // The machine's tracker is a placeholder while forked.
        assert!(m.alloc(0, 1, "denied").is_err());
        shards[0].alloc(0, 50, "shard-side").unwrap();
        let g = shards[1].gpu();
        assert!(shards[1].alloc(g, usize::MAX / 2, "oom").is_err());
        m.join_shards(shards);
        assert_eq!(m.gpu_memory(0).in_use(), 150);
        assert!(m.alloc(0, 1, "restored").is_ok());
    }

    #[test]
    #[should_panic(expected = "strictly per-GPU")]
    fn shard_rejects_foreign_gpu_charges() {
        let mut m = machine();
        let mut shards = m.fork_shards();
        shards[0].h2d(1, 10);
    }

    #[test]
    fn deferred_source_stalls_apply_at_join() {
        // GPU 1 fetching from GPU 0 in naive mode stalls GPU 0; the shard
        // of GPU 1 cannot charge GPU 0, so the stall lands at the join.
        let mut seq = machine();
        seq.d2d(0, 0, 4096); // sequential form of the serving stall
        let mut par = machine();
        let mut shards = par.fork_shards();
        shards[1].source_stall(0, 4096);
        assert_eq!(shards[1].clock(), 0.0, "stall must not charge the fetcher");
        par.join_shards(shards);
        assert_eq!(par.clock(0), seq.clock(0));
        assert_eq!(par.buckets(), seq.buckets());
    }

    #[test]
    fn machine_timeline_source_stall_charges_source_inline() {
        let mut a = machine();
        Timeline::source_stall(&mut a, 2, 1 << 16);
        let mut b = machine();
        b.d2d(2, 2, 1 << 16);
        assert_eq!(a.clock(2), b.clock(2));
        assert_eq!(a.buckets(), b.buckets());
    }

    #[test]
    fn streams_overlap_until_barrier() {
        // The same charges issued on one stream cost their sum; split
        // across streams they cost the max — the overlap model.
        let mut serial = machine();
        serial.h2d(0, 1_000_000);
        serial.gpu_dense(0, 1e9);
        let sum = serial.clock(0);

        let mut overlapped = machine();
        overlapped.set_stream(1);
        let t_load = overlapped.h2d(0, 1_000_000);
        overlapped.set_stream(0);
        let t_compute = overlapped.gpu_dense(0, 1e9);
        assert_eq!(overlapped.clock(0), t_load.max(t_compute));
        assert!(overlapped.clock(0) < sum);
        assert_eq!(overlapped.stream_clock(0, 1), t_load);
        assert_eq!(overlapped.stream_clock(0, 2), 0.0);

        overlapped.barrier();
        for s in 0..NUM_STREAMS as u8 {
            assert_eq!(overlapped.stream_clock(0, s), t_load.max(t_compute));
            assert_eq!(overlapped.stream_clock(3, s), t_load.max(t_compute));
        }
    }

    #[test]
    fn stream_wait_joins_upstream_clock_only() {
        let mut m = machine();
        m.enable_unbounded_trace();
        m.set_stream(1);
        let t = m.h2d(0, 1_000_000);
        m.set_stream(0);
        assert_eq!(m.stream_clock(0, 0), 0.0);
        m.stream_wait(0, 1);
        assert_eq!(m.stream_clock(0, 0), t);
        // Other GPUs and streams untouched: no barrier happened.
        assert_eq!(m.stream_clock(0, 2), 0.0);
        assert_eq!(m.clock(1), 0.0);
        let evs: Vec<_> = m.trace().events().collect();
        assert_eq!(evs[1].kind, EventKind::StreamWait { upstream: 1 });
        assert_eq!(evs[1].stream, 0);
        assert_eq!(evs[1].seconds, 0.0);
    }

    #[test]
    fn events_carry_the_issuing_stream() {
        let mut m = machine();
        m.enable_unbounded_trace();
        m.h2d(0, 10);
        m.set_stream(2);
        m.d2h(0, 10);
        m.barrier();
        m.h2d(0, 10);
        let streams: Vec<_> = m.trace().events().map(|e| e.stream).collect();
        // The barrier resets the cursor to the default stream.
        assert_eq!(streams, vec![0, 2, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_stream_rejects_out_of_range() {
        machine().set_stream(NUM_STREAMS as u8);
    }

    #[test]
    fn buckets_add_combines() {
        let mut a = TimeBuckets::default();
        let b = TimeBuckets {
            h2d: 1.0,
            bytes_h2d: 5,
            ..Default::default()
        };
        a.add(&b);
        a.add(&b);
        assert_eq!(a.h2d, 2.0);
        assert_eq!(a.bytes_h2d, 10);
    }
}
