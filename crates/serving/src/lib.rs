//! Online serving layer over a HongTu [`Session`]: a FIFO queue of
//! vertex-subset logit queries, batch formation that packs concurrent
//! requests into one forward sweep pruned to the union of their
//! ≤ L-hop dependency cones ([`ServeMask`]), and admission control that
//! holds every formed batch to the staging budget
//! ([`Session::staging_budget`]) — a request whose cone cannot fit is
//! answered with a typed [`Overloaded`] response instead of OOM-ing the
//! executor.
//!
//! Batch formation is FIFO and non-overtaking: requests are packed
//! oldest-first; the first request that does not fit with the
//! accumulated batch closes the batch and stays at the queue head for
//! the next sweep, so a large request can delay but never be starved by
//! later small ones. Only a request that exceeds the budget *alone* —
//! and therefore can never be served — is rejected.
//!
//! The queue also accepts graph *updates* ([`UpdateRequest`]): typed
//! delta batches (`hongtu-delta`) committed through the session's
//! incremental cone-local recompute ([`Session::apply_staged`]). Commit
//! semantics are FIFO: an update at the queue head is applied alone —
//! queries never overtake it — so a query's logits reflect exactly the
//! updates enqueued (and committed) before it. Admission prices an
//! update's *recompute* cone (the upward-closed
//! [`ServeMask::from_dirty`] mask) against the same staging budget as
//! query cones; an update whose cone cannot fit, or whose delta batch
//! is invalid against the current topology, is answered with a typed
//! [`UpdateRejected`] and commits nothing.
//!
//! [`run_open_loop`] drives a server with a synthetic open-loop
//! workload ([`poisson_workload`]) on the simulated clock and reports
//! latency percentiles, throughput, the batch-size histogram, and the
//! admission-reject rate — the numbers `bench_serving` emits as
//! `BENCH_serving.json`. [`run_mixed_open_loop`] does the same for an
//! interleaved update + query workload ([`mixed_workload`]).

#![forbid(unsafe_code)]

use hongtu_core::{ServeMask, Session};
use hongtu_delta::{toggle_workload, Delta, DeltaError, DeltaMix, DynamicGraph};
use hongtu_sim::SimError;
use hongtu_tensor::{Matrix, SeededRng};
use std::collections::{BTreeMap, HashMap, VecDeque};

/// One vertex-subset logit query.
#[derive(Debug, Clone)]
pub struct Request {
    /// Caller-chosen id, echoed in the response.
    pub id: u64,
    /// Queried vertex ids (global, non-empty).
    pub vertices: Vec<usize>,
    /// Arrival time on the simulated clock, in seconds.
    pub arrival: f64,
}

/// Typed admission rejection: the request's own dependency cone exceeds
/// the per-GPU staging budget, so no sweep — batched or alone — could
/// run it without overflowing the staging the session was sized for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Overloaded {
    /// Id of the rejected request.
    pub id: u64,
    /// Per-GPU staging cost of the request's cone, in bytes.
    pub cone_bytes: Vec<usize>,
    /// Per-GPU budget the cone was held against, in bytes.
    pub budget_bytes: Vec<usize>,
}

/// A served request: the queried vertices' logits (row order follows
/// the request's vertex order) and its end-to-end latency.
#[derive(Debug, Clone)]
pub struct Served {
    /// Id of the request.
    pub id: u64,
    /// One logits row per queried vertex — bitwise equal to the same
    /// rows of a full `infer_epoch`.
    pub logits: Matrix,
    /// Completion minus arrival on the simulated clock, in seconds.
    pub latency: f64,
}

/// One graph-update request: a typed delta batch to commit through
/// incremental cone-local recompute.
#[derive(Debug, Clone)]
pub struct UpdateRequest {
    /// Caller-chosen id, echoed in the response.
    pub id: u64,
    /// The delta batch (validated transactionally at the queue head).
    pub deltas: Vec<Delta>,
    /// Arrival time on the simulated clock, in seconds.
    pub arrival: f64,
}

/// A committed update: the graph mutated, the stale cone replayed, and
/// the served logits patched in place ([`Session::apply_staged`]).
#[derive(Debug, Clone)]
pub struct Committed {
    /// Id of the update.
    pub id: u64,
    /// Graph epoch the commit produced.
    pub epoch: u64,
    /// Completion minus arrival on the simulated clock, in seconds.
    pub latency: f64,
    /// Dirty `h^1` seed vertices the batch invalidated.
    pub dirty_vertices: usize,
    /// Chunk subgraphs rebuilt against the mutated topology.
    pub rebuilt_chunks: usize,
}

/// Why an update was bounced without committing anything.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpdateRejectReason {
    /// The recompute cone exceeds the staging budget even alone.
    OverBudget {
        /// Per-GPU staging cost of the recompute cone, in bytes.
        cone_bytes: Vec<usize>,
        /// Per-GPU budget the cone was held against, in bytes.
        budget_bytes: Vec<usize>,
    },
    /// The delta batch is invalid against the current topology
    /// (staging is transactional, so nothing was applied).
    Invalid(DeltaError),
}

/// Typed update rejection: the graph and the served logits are
/// untouched, and later queue entries proceed as if the update had
/// never been enqueued.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdateRejected {
    /// Id of the rejected update.
    pub id: u64,
    /// Why it was bounced.
    pub reason: UpdateRejectReason,
}

/// One queue entry: a logit query or a graph update, sharing a single
/// FIFO order so commits serialize with reads.
#[derive(Debug, Clone)]
pub enum WorkItem {
    /// A vertex-subset logit query.
    Query(Request),
    /// A delta-batch commit.
    Update(UpdateRequest),
}

impl WorkItem {
    /// Arrival time on the simulated clock, in seconds.
    pub fn arrival(&self) -> f64 {
        match self {
            WorkItem::Query(r) => r.arrival,
            WorkItem::Update(u) => u.arrival,
        }
    }
}

/// Admission control: per-GPU byte budgets a candidate batch's cone
/// cost must fit.
#[derive(Debug, Clone)]
pub struct AdmissionControl {
    budget: Vec<usize>,
}

impl AdmissionControl {
    /// Budget from the session's own staging arithmetic
    /// ([`Session::staging_budget`]): one input + one output staging
    /// slot per GPU. Any single-request cone fits this by construction
    /// (it is a subset of the full sweep the slots were sized for), so
    /// under this budget requests are only ever *deferred*, never
    /// rejected.
    pub fn from_session(session: &Session) -> AdmissionControl {
        AdmissionControl {
            budget: session.staging_budget(),
        }
    }

    /// Explicit per-GPU budgets — e.g. tighter than the staging plan to
    /// bound tail latency, or for exercising the rejection path.
    pub fn with_budget(budget: Vec<usize>) -> AdmissionControl {
        AdmissionControl { budget }
    }

    /// The per-GPU byte budgets.
    pub fn budget(&self) -> &[usize] {
        &self.budget
    }

    /// Whether a sweep pruned to `mask` fits the budget on every GPU.
    pub fn admits(&self, session: &Session, mask: &ServeMask) -> bool {
        session
            .serve_cone_cost(mask)
            .iter()
            .zip(&self.budget)
            .all(|(cost, budget)| cost <= budget)
    }
}

/// Result of one served batch ([`Server::step`]).
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Requests served by this sweep, in FIFO order.
    pub served: Vec<Served>,
    /// Requests rejected while forming this batch (cone over budget
    /// even alone).
    pub rejected: Vec<Overloaded>,
    /// Updates committed by this step (at most one: updates apply
    /// alone).
    pub committed: Vec<Committed>,
    /// Updates bounced by this step without committing.
    pub rejected_updates: Vec<UpdateRejected>,
    /// Number of requests packed into the sweep (0 if every candidate
    /// was rejected, or if this step processed an update).
    pub batch_size: usize,
    /// Simulated time of the pruned sweep or replay (0 if nothing ran).
    pub sweep_time: f64,
    /// `(layer, batch)` steps the pruned sweep executed.
    pub active_steps: usize,
    /// `(layer, batch)` steps a full sweep would have executed.
    pub total_steps: usize,
}

impl BatchReport {
    fn empty() -> BatchReport {
        BatchReport {
            served: Vec::new(),
            rejected: Vec::new(),
            committed: Vec::new(),
            rejected_updates: Vec::new(),
            batch_size: 0,
            sweep_time: 0.0,
            active_steps: 0,
            total_steps: 0,
        }
    }
}

/// FIFO batching server over a borrowed [`Session`], optionally backed
/// by a [`DynamicGraph`] so the queue can carry graph updates.
pub struct Server<'s> {
    session: &'s mut Session,
    graph: Option<&'s mut DynamicGraph>,
    admission: AdmissionControl,
    batch_window: usize,
    queue: VecDeque<WorkItem>,
    clock: f64,
}

impl<'s> Server<'s> {
    /// Builds a query-only server. `batch_window` caps how many
    /// requests one sweep may pack (≥ 1).
    pub fn new(
        session: &'s mut Session,
        admission: AdmissionControl,
        batch_window: usize,
    ) -> Server<'s> {
        assert!(batch_window >= 1, "batch window must admit one request");
        Server {
            session,
            graph: None,
            admission,
            batch_window,
            queue: VecDeque::new(),
            clock: 0.0,
        }
    }

    /// Builds a server that also accepts graph updates, committed
    /// against `graph` via [`Session::apply_staged`]. The session's
    /// layer stores must be current before the first update commits —
    /// run [`Session::infer_epoch`] once after construction.
    pub fn with_graph(
        session: &'s mut Session,
        graph: &'s mut DynamicGraph,
        admission: AdmissionControl,
        batch_window: usize,
    ) -> Server<'s> {
        let mut server = Server::new(session, admission, batch_window);
        server.graph = Some(graph);
        server
    }

    /// Enqueues a query (FIFO).
    pub fn submit(&mut self, request: Request) {
        self.queue.push_back(WorkItem::Query(request));
    }

    /// Enqueues a graph update (FIFO with the queries: it commits only
    /// once every earlier entry has been processed, and no later query
    /// overtakes it).
    ///
    /// # Panics
    ///
    /// Panics if the server was built without a dynamic graph
    /// ([`Server::new`] instead of [`Server::with_graph`]).
    pub fn submit_update(&mut self, update: UpdateRequest) {
        assert!(
            self.graph.is_some(),
            "updates need a dynamic graph: build the server with Server::with_graph"
        );
        self.queue.push_back(WorkItem::Update(update));
    }

    /// Enqueues either kind of work item (FIFO).
    pub fn submit_work(&mut self, item: WorkItem) {
        match item {
            WorkItem::Query(r) => self.submit(r),
            WorkItem::Update(u) => self.submit_update(u),
        }
    }

    /// Requests waiting to be served.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// The server's simulated clock: completion time of the last sweep
    /// (or the last idle advance).
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// Advances the clock to `t` (idle wait for the next arrival);
    /// never moves it backwards.
    pub fn advance_to(&mut self, t: f64) {
        self.clock = self.clock.max(t);
    }

    /// Processes the queue head. Returns `None` when the queue is
    /// empty. A query head opens a batch: later queries are packed
    /// FIFO without overtaking — a request that does not fit with the
    /// accumulated batch (but would fit alone) defers, one that exceeds
    /// the budget even alone is popped and rejected as [`Overloaded`],
    /// and an update closes the batch (commits serialize with reads) —
    /// then the batch runs as one pruned sweep. An update head is
    /// applied alone through [`Session::apply_staged`], priced by its
    /// recompute cone, with typed [`UpdateRejected`] on an invalid or
    /// over-budget batch.
    pub fn step(&mut self) -> Result<Option<BatchReport>, SimError> {
        if self.queue.is_empty() {
            return Ok(None);
        }
        if matches!(self.queue.front(), Some(WorkItem::Update(_))) {
            return self.step_update().map(Some);
        }
        let layers = self.session.model().num_layers();
        let mut rejected = Vec::new();
        let mut batch: Vec<Request> = Vec::new();
        let mut union: Vec<usize> = Vec::new();
        let mut row_of: HashMap<usize, usize> = HashMap::new();
        while batch.len() < self.batch_window {
            // An update at the head closes the batch: queries never
            // overtake a pending commit.
            let Some(WorkItem::Query(head)) = self.queue.front() else {
                break;
            };
            let mut cand = union.clone();
            for &v in &head.vertices {
                if !row_of.contains_key(&v) && !cand[union.len()..].contains(&v) {
                    cand.push(v);
                }
            }
            let mask = ServeMask::from_queries(self.session.plans().partition, layers, &cand);
            if self.admission.admits(self.session, &mask) {
                let Some(WorkItem::Query(req)) = self.queue.pop_front() else {
                    unreachable!("head was matched as a query");
                };
                for &v in &cand[union.len()..] {
                    row_of.insert(v, row_of.len());
                }
                union = cand;
                batch.push(req);
            } else if batch.is_empty() {
                // Even alone the cone exceeds the budget: typed
                // rejection — this request can never be served.
                let Some(WorkItem::Query(req)) = self.queue.pop_front() else {
                    unreachable!("head was matched as a query");
                };
                rejected.push(Overloaded {
                    id: req.id,
                    cone_bytes: self.session.serve_cone_cost(&mask),
                    budget_bytes: self.admission.budget.clone(),
                });
            } else {
                // Defer: stays at the queue head; no later request may
                // overtake it.
                break;
            }
        }
        if batch.is_empty() {
            return Ok(Some(BatchReport {
                rejected,
                ..BatchReport::empty()
            }));
        }

        let report = self.session.serve(&union)?;
        let batch_size = batch.len();
        let start = batch.iter().fold(self.clock, |acc, r| acc.max(r.arrival));
        self.clock = start + report.time;
        let served = batch
            .into_iter()
            .map(|req| {
                let rows: Vec<usize> = req.vertices.iter().map(|v| row_of[v]).collect();
                Served {
                    id: req.id,
                    logits: report.logits.gather_rows(&rows),
                    latency: self.clock - req.arrival,
                }
            })
            .collect();
        Ok(Some(BatchReport {
            served,
            rejected,
            batch_size,
            sweep_time: report.time,
            active_steps: report.active_steps,
            total_steps: report.total_steps,
            ..BatchReport::empty()
        }))
    }

    /// Commits the update at the queue head alone: stage the delta
    /// batch transactionally, price its upward-closed recompute cone
    /// against the admission budget, and replay the stale cone through
    /// [`Session::apply_staged`]. Rejections leave the graph and the
    /// served logits untouched.
    fn step_update(&mut self) -> Result<BatchReport, SimError> {
        let Some(WorkItem::Update(upd)) = self.queue.pop_front() else {
            unreachable!("step_update runs only with an update at the head");
        };
        let dg = self
            .graph
            .as_deref_mut()
            .expect("updates need a dynamic graph: build the server with Server::with_graph");
        let staged = match dg.stage(&upd.deltas) {
            Ok(staged) => staged,
            Err(err) => {
                return Ok(BatchReport {
                    rejected_updates: vec![UpdateRejected {
                        id: upd.id,
                        reason: UpdateRejectReason::Invalid(err),
                    }],
                    ..BatchReport::empty()
                });
            }
        };
        let layers = self.session.model().num_layers();
        let mask = ServeMask::from_dirty(self.session.plans().partition, layers, staged.dirty());
        if !self.admission.admits(self.session, &mask) {
            return Ok(BatchReport {
                rejected_updates: vec![UpdateRejected {
                    id: upd.id,
                    reason: UpdateRejectReason::OverBudget {
                        cone_bytes: self.session.serve_cone_cost(&mask),
                        budget_bytes: self.admission.budget.clone(),
                    },
                }],
                ..BatchReport::empty()
            });
        }
        let report = self.session.apply_staged(dg, staged)?;
        let start = self.clock.max(upd.arrival);
        self.clock = start + report.time;
        Ok(BatchReport {
            committed: vec![Committed {
                id: upd.id,
                epoch: report.epoch,
                latency: self.clock - upd.arrival,
                dirty_vertices: report.dirty_vertices,
                rebuilt_chunks: report.rebuilt_chunks,
            }],
            sweep_time: report.time,
            active_steps: report.active_steps,
            total_steps: report.total_steps,
            ..BatchReport::empty()
        })
    }
}

/// Open-loop Poisson workload: `count` requests with exponential
/// inter-arrival times at rate `qps`, each querying a uniformly sampled
/// subset of `subset` distinct vertices.
pub fn poisson_workload(
    num_vertices: usize,
    count: usize,
    qps: f64,
    subset: usize,
    rng: &mut SeededRng,
) -> Vec<Request> {
    assert!(qps > 0.0, "arrival rate must be positive");
    let mut t = 0.0f64;
    (0..count)
        .map(|k| {
            t += -(1.0 - rng.uniform() as f64).ln() / qps;
            Request {
                id: k as u64,
                vertices: rng.sample_indices(num_vertices, subset),
                arrival: t,
            }
        })
        .collect()
}

/// Open-loop mixed workload: `count` items with exponential
/// inter-arrival times at rate `qps`; each item is an update with
/// probability `update_frac` (a valid toggle batch of `edits` deltas,
/// [`toggle_workload`]) and otherwise a query over a uniformly sampled
/// subset of `subset` distinct vertices. Update batches are valid
/// exactly when committed in FIFO order with none rejected — which the
/// session's own staging budget guarantees.
#[allow(clippy::too_many_arguments)]
pub fn mixed_workload(
    dg: &DynamicGraph,
    count: usize,
    qps: f64,
    subset: usize,
    update_frac: f64,
    edits: usize,
    mix: DeltaMix,
    rng: &mut SeededRng,
) -> Vec<WorkItem> {
    assert!(qps > 0.0, "arrival rate must be positive");
    assert!(
        (0.0..=1.0).contains(&update_frac),
        "update fraction must be in [0, 1]"
    );
    let kinds: Vec<bool> = (0..count).map(|_| rng.chance(update_frac)).collect();
    let updates = kinds.iter().filter(|&&u| u).count();
    let mut batches =
        toggle_workload(dg.graph(), dg.features().cols(), updates, edits, mix, rng).into_iter();
    let n = dg.num_vertices();
    let mut t = 0.0f64;
    kinds
        .iter()
        .enumerate()
        .map(|(k, &is_update)| {
            t += -(1.0 - rng.uniform() as f64).ln() / qps;
            if is_update {
                WorkItem::Update(UpdateRequest {
                    id: k as u64,
                    deltas: batches.next().expect("one batch per update"),
                    arrival: t,
                })
            } else {
                WorkItem::Query(Request {
                    id: k as u64,
                    vertices: rng.sample_indices(n, subset),
                    arrival: t,
                })
            }
        })
        .collect()
}

/// Aggregate statistics of one open-loop run ([`run_open_loop`],
/// [`run_mixed_open_loop`]).
#[derive(Debug, Clone)]
pub struct LoadStats {
    /// Requests served.
    pub served: usize,
    /// Requests rejected ([`Overloaded`]).
    pub rejected: usize,
    /// `rejected / (served + rejected)`.
    pub reject_rate: f64,
    /// Median end-to-end query latency in simulated seconds.
    pub p50_latency: f64,
    /// 99th-percentile end-to-end query latency in simulated seconds.
    pub p99_latency: f64,
    /// Served queries per simulated second (served / makespan).
    pub queries_per_sec: f64,
    /// `(batch size, occurrences)` over all non-empty sweeps, ascending.
    pub batch_hist: Vec<(usize, usize)>,
    /// Simulated completion time of the last sweep.
    pub makespan: f64,
    /// Total simulated time spent inside pruned sweeps and replays.
    pub total_sweep_time: f64,
    /// Updates committed.
    pub updates_committed: usize,
    /// Updates rejected ([`UpdateRejected`]).
    pub updates_rejected: usize,
    /// Median end-to-end update latency in simulated seconds (0 with
    /// no committed updates).
    pub p50_update_latency: f64,
    /// 99th-percentile end-to-end update latency in simulated seconds
    /// (0 with no committed updates).
    pub p99_update_latency: f64,
}

/// Nearest-rank percentile of an unsorted latency sample (`p` in
/// [0, 100]); 0 for an empty sample.
pub fn percentile(latencies: &[f64], p: usize) -> f64 {
    if latencies.is_empty() {
        return 0.0;
    }
    let mut sorted = latencies.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    sorted[(sorted.len() - 1) * p / 100]
}

/// Drives `workload` (sorted by arrival) through a [`Server`] on the
/// simulated clock: requests are enqueued as the clock passes their
/// arrival, the server batches work-conservingly, and the clock idles
/// forward when the queue runs dry before the next arrival.
pub fn run_open_loop(
    session: &mut Session,
    admission: AdmissionControl,
    batch_window: usize,
    workload: Vec<Request>,
) -> Result<LoadStats, SimError> {
    let mut server = Server::new(session, admission, batch_window);
    drive(
        &mut server,
        workload.into_iter().map(WorkItem::Query).collect(),
    )
}

/// [`run_open_loop`] for an interleaved update + query workload
/// ([`mixed_workload`]): updates commit FIFO through `dg`, queries see
/// exactly the updates enqueued (and committed) before them. The
/// session's layer stores must be current — run
/// [`Session::infer_epoch`] once before calling.
pub fn run_mixed_open_loop(
    session: &mut Session,
    dg: &mut DynamicGraph,
    admission: AdmissionControl,
    batch_window: usize,
    workload: Vec<WorkItem>,
) -> Result<LoadStats, SimError> {
    let mut server = Server::with_graph(session, dg, admission, batch_window);
    drive(&mut server, workload)
}

/// Shared open-loop driver: enqueue arrivals as the clock passes them,
/// batch work-conservingly, idle forward when the queue runs dry.
fn drive(server: &mut Server<'_>, workload: Vec<WorkItem>) -> Result<LoadStats, SimError> {
    let mut pending = workload.into_iter().peekable();
    let mut latencies: Vec<f64> = Vec::new();
    let mut update_latencies: Vec<f64> = Vec::new();
    let mut hist: BTreeMap<usize, usize> = BTreeMap::new();
    let mut rejected = 0usize;
    let mut updates_rejected = 0usize;
    let mut total_sweep_time = 0.0f64;
    loop {
        while pending
            .peek()
            .is_some_and(|w| w.arrival() <= server.clock())
        {
            server.submit_work(pending.next().expect("peeked"));
        }
        if server.queue_len() == 0 {
            match pending.next() {
                Some(w) => {
                    server.advance_to(w.arrival());
                    server.submit_work(w);
                }
                None => break,
            }
        }
        if let Some(batch) = server.step()? {
            latencies.extend(batch.served.iter().map(|s| s.latency));
            update_latencies.extend(batch.committed.iter().map(|c| c.latency));
            rejected += batch.rejected.len();
            updates_rejected += batch.rejected_updates.len();
            total_sweep_time += batch.sweep_time;
            if batch.batch_size > 0 {
                *hist.entry(batch.batch_size).or_insert(0) += 1;
            }
        }
    }
    let served = latencies.len();
    let makespan = server.clock();
    Ok(LoadStats {
        served,
        rejected,
        reject_rate: rejected as f64 / (served + rejected).max(1) as f64,
        p50_latency: percentile(&latencies, 50),
        p99_latency: percentile(&latencies, 99),
        queries_per_sec: if makespan > 0.0 {
            served as f64 / makespan
        } else {
            0.0
        },
        batch_hist: hist.into_iter().collect(),
        makespan,
        total_sweep_time,
        updates_committed: update_latencies.len(),
        updates_rejected,
        p50_update_latency: percentile(&update_latencies, 50),
        p99_update_latency: percentile(&update_latencies, 99),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hongtu_core::{CommMode, HongTuConfig, OverlapMode};
    use hongtu_datasets::dataset::{Dataset, DatasetKey};
    use hongtu_datasets::load;
    use hongtu_nn::ModelKind;
    use hongtu_sim::MachineConfig;

    fn dataset() -> Dataset {
        load(DatasetKey::Rdt, &mut SeededRng::new(99))
    }

    fn session(ds: &Dataset, gpus: usize) -> Session {
        let cfg = HongTuConfig::builder()
            .machine(MachineConfig::scaled(gpus, 512 << 20))
            .comm(CommMode::P2pRu)
            .reorganize(true)
            .overlap(OverlapMode::Off)
            .infer()
            .build()
            .expect("valid config");
        Session::new(ds, ModelKind::Gcn, 16, 2, 4, cfg).expect("session")
    }

    fn request(id: u64, vertices: Vec<usize>, arrival: f64) -> Request {
        Request {
            id,
            vertices,
            arrival,
        }
    }

    /// A budget no cone can fit yields a typed `Overloaded` response —
    /// the sweep is never attempted, so there is no `SimError` of any
    /// kind, let alone an OOM.
    #[test]
    fn over_budget_request_is_rejected_typed_not_oom() {
        let ds = dataset();
        let mut sess = session(&ds, 2);
        let admission = AdmissionControl::with_budget(vec![1; 2]);
        let mut server = Server::new(&mut sess, admission, 4);
        server.submit(request(7, vec![0, 1], 0.0));
        let report = server
            .step()
            .expect("rejection must not surface as SimError")
            .expect("queue was non-empty");
        assert_eq!(report.batch_size, 0);
        assert!(report.served.is_empty());
        assert_eq!(report.sweep_time, 0.0);
        assert_eq!(report.rejected.len(), 1);
        let rej = &report.rejected[0];
        assert_eq!(rej.id, 7);
        assert_eq!(rej.budget_bytes, vec![1; 2]);
        assert!(
            rej.cone_bytes
                .iter()
                .zip(&rej.budget_bytes)
                .any(|(c, b)| c > b),
            "rejection must carry the over-budget cone cost: {:?}",
            rej.cone_bytes
        );
        assert_eq!(server.queue_len(), 0, "rejected request leaves the queue");
    }

    /// Under the session's own staging budget every request fits (its
    /// cone is a subset of the full sweep the slots were sized for):
    /// nothing is rejected and FIFO order is preserved within the batch.
    #[test]
    fn default_budget_serves_all_in_fifo_order() {
        let ds = dataset();
        let n = ds.graph.num_vertices();
        let mut sess = session(&ds, 2);
        let admission = AdmissionControl::from_session(&sess);
        let mut server = Server::new(&mut sess, admission, 8);
        server.submit(request(1, vec![0], 0.0));
        server.submit(request(2, vec![n / 2, 0], 0.1));
        server.submit(request(3, vec![n - 1], 0.2));
        let report = server.step().expect("serve").expect("non-empty queue");
        assert!(report.rejected.is_empty());
        assert_eq!(report.batch_size, 3);
        let ids: Vec<u64> = report.served.iter().map(|s| s.id).collect();
        assert_eq!(ids, vec![1, 2, 3]);
        for s in &report.served {
            assert!(s.latency > 0.0);
            assert!(s.logits.rows() >= 1);
        }
        assert_eq!(report.served[1].logits.rows(), 2);
        assert!(report.active_steps < report.total_steps || report.batch_size == 3);
    }

    /// `batch_window = 1` degenerates to one sweep per request, still in
    /// submission order across steps.
    #[test]
    fn batch_window_caps_batch_size_fifo_across_steps() {
        let ds = dataset();
        let mut sess = session(&ds, 1);
        let admission = AdmissionControl::from_session(&sess);
        let mut server = Server::new(&mut sess, admission, 1);
        for (k, v) in [(10u64, 0usize), (11, 3), (12, 5)] {
            server.submit(request(k, vec![v], 0.0));
        }
        let mut order = Vec::new();
        while let Some(report) = server.step().expect("serve") {
            assert_eq!(report.batch_size, 1);
            order.extend(report.served.iter().map(|s| s.id));
        }
        assert_eq!(order, vec![10, 11, 12]);
    }

    /// Served rows are bitwise equal to the same rows of a full
    /// `infer_epoch` on an identically seeded fresh session.
    #[test]
    fn served_logits_match_full_inference_rows() {
        let ds = dataset();
        let n = ds.graph.num_vertices();
        let vertices = [0usize, 1, n / 3, n - 1];
        let served = {
            let mut sess = session(&ds, 2);
            let admission = AdmissionControl::from_session(&sess);
            let mut server = Server::new(&mut sess, admission, 4);
            server.submit(request(0, vertices.to_vec(), 0.0));
            let report = server.step().expect("serve").expect("non-empty queue");
            report.served[0].logits.clone()
        };
        let full = {
            let mut sess = session(&ds, 2);
            sess.infer_epoch().expect("infer epoch").logits
        };
        assert_eq!(served, full.gather_rows(&vertices));
    }

    #[test]
    fn poisson_workload_arrivals_monotone_nondecreasing() {
        let mut rng = SeededRng::new(1234);
        let reqs = poisson_workload(100, 50, 8.0, 5, &mut rng);
        assert_eq!(reqs.len(), 50);
        let mut prev = 0.0f64;
        for (k, r) in reqs.iter().enumerate() {
            assert_eq!(r.id, k as u64);
            assert_eq!(r.vertices.len(), 5);
            assert!(r.vertices.iter().all(|&v| v < 100));
            assert!(r.arrival >= prev, "arrivals must be non-decreasing");
            assert!(r.arrival.is_finite());
            prev = r.arrival;
        }
        assert!(prev > 0.0);
    }

    #[test]
    fn percentile_is_nearest_rank() {
        assert_eq!(percentile(&[], 99), 0.0);
        assert_eq!(percentile(&[4.0], 50), 4.0);
        let sample: Vec<f64> = (1..=100).map(|k| k as f64).collect();
        assert_eq!(percentile(&sample, 50), 50.0);
        assert_eq!(percentile(&sample, 99), 99.0);
        assert_eq!(percentile(&sample, 100), 100.0);
        assert_eq!(percentile(&sample, 0), 1.0);
    }

    /// Open-loop smoke: under the session's own budget every request is
    /// served, the tail is finite, and the histogram accounts for every
    /// served request.
    #[test]
    fn open_loop_under_budget_serves_everything() {
        let ds = dataset();
        let n = ds.graph.num_vertices();
        let mut sess = session(&ds, 2);
        let admission = AdmissionControl::from_session(&sess);
        let mut rng = SeededRng::new(7);
        let workload = poisson_workload(n, 10, 50.0, 3, &mut rng);
        let stats = run_open_loop(&mut sess, admission, 4, workload).expect("open loop");
        assert_eq!(stats.served, 10);
        assert_eq!(stats.rejected, 0);
        assert_eq!(stats.reject_rate, 0.0);
        assert!(stats.p50_latency.is_finite() && stats.p50_latency > 0.0);
        assert!(stats.p99_latency.is_finite() && stats.p99_latency >= stats.p50_latency);
        assert!(stats.queries_per_sec > 0.0);
        assert!(stats.makespan > 0.0);
        assert!(stats.total_sweep_time > 0.0);
        let hist_total: usize = stats
            .batch_hist
            .iter()
            .map(|(size, count)| size * count)
            .sum();
        assert_eq!(hist_total, 10);
        assert!(stats
            .batch_hist
            .iter()
            .all(|&(size, _)| (1..=4).contains(&size)));
    }

    /// FIFO commit semantics: a query enqueued before an update is
    /// answered from the pre-update graph, one enqueued after from the
    /// post-update graph — and the update closes the first query batch
    /// rather than being overtaken.
    #[test]
    fn query_before_update_sees_old_logits_query_after_sees_new() {
        let ds = dataset();
        let feat_dim = ds.features.cols();
        let probe = 0usize;
        let mut dg = DynamicGraph::from_dataset(&ds);
        let mut sess = session(&ds, 2);
        sess.infer_epoch().expect("prime layer stores");
        let admission = AdmissionControl::from_session(&sess);
        let mut server = Server::with_graph(&mut sess, &mut dg, admission, 8);
        server.submit(request(1, vec![probe], 0.0));
        server.submit_update(UpdateRequest {
            id: 2,
            deltas: vec![Delta::UpdateFeatures {
                vertex: probe as u32,
                features: vec![0.25; feat_dim],
            }],
            arrival: 0.0,
        });
        server.submit(request(3, vec![probe], 0.0));

        let first = server.step().expect("serve").expect("non-empty queue");
        assert_eq!(
            first.batch_size, 1,
            "the pending update must close the query batch"
        );
        let before = first.served[0].logits.clone();

        let second = server.step().expect("commit").expect("non-empty queue");
        assert!(second.served.is_empty());
        assert_eq!(second.committed.len(), 1);
        assert_eq!(second.committed[0].id, 2);
        assert_eq!(second.committed[0].epoch, 1);
        assert!(second.committed[0].latency > 0.0);
        assert!(second.committed[0].dirty_vertices >= 1);

        let third = server.step().expect("serve").expect("non-empty queue");
        let after = third.served[0].logits.clone();
        drop(server);

        let pre = {
            let mut fresh = session(&ds, 2);
            fresh.infer_epoch().expect("infer").logits
        };
        let post = {
            let mutated = dg.to_dataset(&ds);
            let mut fresh = session(&mutated, 2);
            fresh.infer_epoch().expect("infer").logits
        };
        assert_eq!(before, pre.gather_rows(&[probe]));
        assert_eq!(after, post.gather_rows(&[probe]));
        assert_ne!(before, after, "the feature rewrite must reach the logits");
    }

    /// An update whose recompute cone exceeds the budget even alone is
    /// bounced with a typed reason; the graph does not advance.
    #[test]
    fn over_budget_update_is_rejected_typed_graph_untouched() {
        let ds = dataset();
        let feat_dim = ds.features.cols();
        let mut dg = DynamicGraph::from_dataset(&ds);
        let mut sess = session(&ds, 2);
        let admission = AdmissionControl::with_budget(vec![1; 2]);
        let mut server = Server::with_graph(&mut sess, &mut dg, admission, 4);
        server.submit_update(UpdateRequest {
            id: 9,
            deltas: vec![Delta::UpdateFeatures {
                vertex: 0,
                features: vec![1.0; feat_dim],
            }],
            arrival: 0.0,
        });
        let report = server
            .step()
            .expect("rejection must not surface as SimError")
            .expect("queue was non-empty");
        drop(server);
        assert!(report.committed.is_empty());
        assert_eq!(report.sweep_time, 0.0);
        assert_eq!(report.rejected_updates.len(), 1);
        let rej = &report.rejected_updates[0];
        assert_eq!(rej.id, 9);
        match &rej.reason {
            UpdateRejectReason::OverBudget {
                cone_bytes,
                budget_bytes,
            } => {
                assert_eq!(budget_bytes, &vec![1usize; 2]);
                assert!(cone_bytes.iter().zip(budget_bytes).any(|(c, b)| c > b));
            }
            other => panic!("expected OverBudget, got {other:?}"),
        }
        assert_eq!(dg.epoch(), 0, "a rejected update must not commit");
    }

    /// An invalid delta batch (here: re-adding an existing edge) is
    /// bounced with the typed staging error; nothing is applied.
    #[test]
    fn invalid_update_is_rejected_typed_graph_untouched() {
        let ds = dataset();
        let (src, dst) = ds
            .graph
            .csr
            .edges()
            .find(|(u, v)| u != v)
            .expect("a non-loop edge exists");
        let mut dg = DynamicGraph::from_dataset(&ds);
        let mut sess = session(&ds, 2);
        let admission = AdmissionControl::from_session(&sess);
        let mut server = Server::with_graph(&mut sess, &mut dg, admission, 4);
        server.submit_update(UpdateRequest {
            id: 5,
            deltas: vec![Delta::AddEdge { src, dst }],
            arrival: 0.0,
        });
        let report = server
            .step()
            .expect("rejection must not surface as SimError")
            .expect("queue was non-empty");
        drop(server);
        assert!(report.committed.is_empty());
        assert_eq!(
            report.rejected_updates,
            vec![UpdateRejected {
                id: 5,
                reason: UpdateRejectReason::Invalid(DeltaError::DuplicateEdge { src, dst }),
            }]
        );
        assert_eq!(dg.epoch(), 0, "a rejected update must not commit");
    }

    /// Mixed open-loop smoke: under the session's own budget every
    /// query is served and every update commits, in FIFO order, and the
    /// graph epoch counts exactly the committed updates.
    #[test]
    fn mixed_open_loop_commits_and_serves_everything() {
        let ds = dataset();
        let mut dg = DynamicGraph::from_dataset(&ds);
        let mut sess = session(&ds, 2);
        sess.infer_epoch().expect("prime layer stores");
        let admission = AdmissionControl::from_session(&sess);
        let mut rng = SeededRng::new(11);
        let workload = mixed_workload(&dg, 12, 50.0, 3, 0.4, 1, DeltaMix::Mixed, &mut rng);
        let updates = workload
            .iter()
            .filter(|w| matches!(w, WorkItem::Update(_)))
            .count();
        assert!(
            updates >= 1 && updates < workload.len(),
            "seed must yield a genuinely mixed workload, got {updates} updates"
        );
        let mut prev = 0.0f64;
        for w in &workload {
            assert!(w.arrival() >= prev, "arrivals must be non-decreasing");
            prev = w.arrival();
        }
        let stats =
            run_mixed_open_loop(&mut sess, &mut dg, admission, 4, workload).expect("open loop");
        assert_eq!(stats.served, 12 - updates);
        assert_eq!(stats.updates_committed, updates);
        assert_eq!(stats.rejected, 0);
        assert_eq!(stats.updates_rejected, 0);
        assert_eq!(dg.epoch(), updates as u64);
        assert!(stats.p50_update_latency.is_finite() && stats.p50_update_latency > 0.0);
        assert!(stats.p99_update_latency >= stats.p50_update_latency);
        assert!(stats.total_sweep_time > 0.0);
        let hist_total: usize = stats
            .batch_hist
            .iter()
            .map(|(size, count)| size * count)
            .sum();
        assert_eq!(hist_total, stats.served);
    }
}
