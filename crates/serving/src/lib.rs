//! Online serving layer over a HongTu [`Session`]: a FIFO queue of
//! vertex-subset logit queries, batch formation that packs concurrent
//! requests into one forward sweep pruned to the union of their
//! ≤ L-hop dependency cones ([`ServeMask`]), and admission control that
//! holds every formed batch to the staging budget
//! ([`Session::staging_budget`]) — a request whose cone cannot fit is
//! answered with a typed [`Overloaded`] response instead of OOM-ing the
//! executor.
//!
//! Batch formation is FIFO and non-overtaking: requests are packed
//! oldest-first; the first request that does not fit with the
//! accumulated batch closes the batch and stays at the queue head for
//! the next sweep, so a large request can delay but never be starved by
//! later small ones. Only a request that exceeds the budget *alone* —
//! and therefore can never be served — is rejected.
//!
//! [`run_open_loop`] drives a server with a synthetic open-loop
//! workload ([`poisson_workload`]) on the simulated clock and reports
//! latency percentiles, throughput, the batch-size histogram, and the
//! admission-reject rate — the numbers `bench_serving` emits as
//! `BENCH_serving.json`.

#![forbid(unsafe_code)]

use hongtu_core::{ServeMask, Session};
use hongtu_sim::SimError;
use hongtu_tensor::{Matrix, SeededRng};
use std::collections::{BTreeMap, HashMap, VecDeque};

/// One vertex-subset logit query.
#[derive(Debug, Clone)]
pub struct Request {
    /// Caller-chosen id, echoed in the response.
    pub id: u64,
    /// Queried vertex ids (global, non-empty).
    pub vertices: Vec<usize>,
    /// Arrival time on the simulated clock, in seconds.
    pub arrival: f64,
}

/// Typed admission rejection: the request's own dependency cone exceeds
/// the per-GPU staging budget, so no sweep — batched or alone — could
/// run it without overflowing the staging the session was sized for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Overloaded {
    /// Id of the rejected request.
    pub id: u64,
    /// Per-GPU staging cost of the request's cone, in bytes.
    pub cone_bytes: Vec<usize>,
    /// Per-GPU budget the cone was held against, in bytes.
    pub budget_bytes: Vec<usize>,
}

/// A served request: the queried vertices' logits (row order follows
/// the request's vertex order) and its end-to-end latency.
#[derive(Debug, Clone)]
pub struct Served {
    /// Id of the request.
    pub id: u64,
    /// One logits row per queried vertex — bitwise equal to the same
    /// rows of a full `infer_epoch`.
    pub logits: Matrix,
    /// Completion minus arrival on the simulated clock, in seconds.
    pub latency: f64,
}

/// Admission control: per-GPU byte budgets a candidate batch's cone
/// cost must fit.
#[derive(Debug, Clone)]
pub struct AdmissionControl {
    budget: Vec<usize>,
}

impl AdmissionControl {
    /// Budget from the session's own staging arithmetic
    /// ([`Session::staging_budget`]): one input + one output staging
    /// slot per GPU. Any single-request cone fits this by construction
    /// (it is a subset of the full sweep the slots were sized for), so
    /// under this budget requests are only ever *deferred*, never
    /// rejected.
    pub fn from_session(session: &Session) -> AdmissionControl {
        AdmissionControl {
            budget: session.staging_budget(),
        }
    }

    /// Explicit per-GPU budgets — e.g. tighter than the staging plan to
    /// bound tail latency, or for exercising the rejection path.
    pub fn with_budget(budget: Vec<usize>) -> AdmissionControl {
        AdmissionControl { budget }
    }

    /// The per-GPU byte budgets.
    pub fn budget(&self) -> &[usize] {
        &self.budget
    }

    /// Whether a sweep pruned to `mask` fits the budget on every GPU.
    pub fn admits(&self, session: &Session, mask: &ServeMask) -> bool {
        session
            .serve_cone_cost(mask)
            .iter()
            .zip(&self.budget)
            .all(|(cost, budget)| cost <= budget)
    }
}

/// Result of one served batch ([`Server::step`]).
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Requests served by this sweep, in FIFO order.
    pub served: Vec<Served>,
    /// Requests rejected while forming this batch (cone over budget
    /// even alone).
    pub rejected: Vec<Overloaded>,
    /// Number of requests packed into the sweep (0 if every candidate
    /// was rejected).
    pub batch_size: usize,
    /// Simulated time of the pruned sweep (0 if nothing ran).
    pub sweep_time: f64,
    /// `(layer, batch)` steps the pruned sweep executed.
    pub active_steps: usize,
    /// `(layer, batch)` steps a full sweep would have executed.
    pub total_steps: usize,
}

/// FIFO batching server over a borrowed [`Session`].
pub struct Server<'s> {
    session: &'s mut Session,
    admission: AdmissionControl,
    batch_window: usize,
    queue: VecDeque<Request>,
    clock: f64,
}

impl<'s> Server<'s> {
    /// Builds a server. `batch_window` caps how many requests one sweep
    /// may pack (≥ 1).
    pub fn new(
        session: &'s mut Session,
        admission: AdmissionControl,
        batch_window: usize,
    ) -> Server<'s> {
        assert!(batch_window >= 1, "batch window must admit one request");
        Server {
            session,
            admission,
            batch_window,
            queue: VecDeque::new(),
            clock: 0.0,
        }
    }

    /// Enqueues a request (FIFO).
    pub fn submit(&mut self, request: Request) {
        self.queue.push_back(request);
    }

    /// Requests waiting to be served.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// The server's simulated clock: completion time of the last sweep
    /// (or the last idle advance).
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// Advances the clock to `t` (idle wait for the next arrival);
    /// never moves it backwards.
    pub fn advance_to(&mut self, t: f64) {
        self.clock = self.clock.max(t);
    }

    /// Forms one batch from the queue head and serves it with a single
    /// pruned sweep. Returns `None` when the queue is empty. Packing is
    /// FIFO without overtaking: a head request that does not fit with
    /// the accumulated batch (but would fit alone) defers — it stays at
    /// the head and the batch closes; one that exceeds the budget even
    /// alone is popped and rejected as [`Overloaded`].
    pub fn step(&mut self) -> Result<Option<BatchReport>, SimError> {
        if self.queue.is_empty() {
            return Ok(None);
        }
        let layers = self.session.model().num_layers();
        let mut rejected = Vec::new();
        let mut batch: Vec<Request> = Vec::new();
        let mut union: Vec<usize> = Vec::new();
        let mut row_of: HashMap<usize, usize> = HashMap::new();
        while batch.len() < self.batch_window {
            let Some(head) = self.queue.front() else {
                break;
            };
            let mut cand = union.clone();
            for &v in &head.vertices {
                if !row_of.contains_key(&v) && !cand[union.len()..].contains(&v) {
                    cand.push(v);
                }
            }
            let mask = ServeMask::from_queries(self.session.plan(), layers, &cand);
            if self.admission.admits(self.session, &mask) {
                let req = self.queue.pop_front().expect("head exists");
                for &v in &cand[union.len()..] {
                    row_of.insert(v, row_of.len());
                }
                union = cand;
                batch.push(req);
            } else if batch.is_empty() {
                // Even alone the cone exceeds the budget: typed
                // rejection — this request can never be served.
                let req = self.queue.pop_front().expect("head exists");
                rejected.push(Overloaded {
                    id: req.id,
                    cone_bytes: self.session.serve_cone_cost(&mask),
                    budget_bytes: self.admission.budget.clone(),
                });
            } else {
                // Defer: stays at the queue head; no later request may
                // overtake it.
                break;
            }
        }
        if batch.is_empty() {
            return Ok(Some(BatchReport {
                served: Vec::new(),
                rejected,
                batch_size: 0,
                sweep_time: 0.0,
                active_steps: 0,
                total_steps: 0,
            }));
        }

        let report = self.session.serve(&union)?;
        let batch_size = batch.len();
        let start = batch.iter().fold(self.clock, |acc, r| acc.max(r.arrival));
        self.clock = start + report.time;
        let served = batch
            .into_iter()
            .map(|req| {
                let rows: Vec<usize> = req.vertices.iter().map(|v| row_of[v]).collect();
                Served {
                    id: req.id,
                    logits: report.logits.gather_rows(&rows),
                    latency: self.clock - req.arrival,
                }
            })
            .collect();
        Ok(Some(BatchReport {
            served,
            rejected,
            batch_size,
            sweep_time: report.time,
            active_steps: report.active_steps,
            total_steps: report.total_steps,
        }))
    }
}

/// Open-loop Poisson workload: `count` requests with exponential
/// inter-arrival times at rate `qps`, each querying a uniformly sampled
/// subset of `subset` distinct vertices.
pub fn poisson_workload(
    num_vertices: usize,
    count: usize,
    qps: f64,
    subset: usize,
    rng: &mut SeededRng,
) -> Vec<Request> {
    assert!(qps > 0.0, "arrival rate must be positive");
    let mut t = 0.0f64;
    (0..count)
        .map(|k| {
            t += -(1.0 - rng.uniform() as f64).ln() / qps;
            Request {
                id: k as u64,
                vertices: rng.sample_indices(num_vertices, subset),
                arrival: t,
            }
        })
        .collect()
}

/// Aggregate statistics of one open-loop run ([`run_open_loop`]).
#[derive(Debug, Clone)]
pub struct LoadStats {
    /// Requests served.
    pub served: usize,
    /// Requests rejected ([`Overloaded`]).
    pub rejected: usize,
    /// `rejected / (served + rejected)`.
    pub reject_rate: f64,
    /// Median end-to-end latency in simulated seconds.
    pub p50_latency: f64,
    /// 99th-percentile end-to-end latency in simulated seconds.
    pub p99_latency: f64,
    /// Served queries per simulated second (served / makespan).
    pub queries_per_sec: f64,
    /// `(batch size, occurrences)` over all non-empty sweeps, ascending.
    pub batch_hist: Vec<(usize, usize)>,
    /// Simulated completion time of the last sweep.
    pub makespan: f64,
    /// Total simulated time spent inside pruned sweeps.
    pub total_sweep_time: f64,
}

/// Nearest-rank percentile of an unsorted latency sample (`p` in
/// [0, 100]); 0 for an empty sample.
pub fn percentile(latencies: &[f64], p: usize) -> f64 {
    if latencies.is_empty() {
        return 0.0;
    }
    let mut sorted = latencies.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    sorted[(sorted.len() - 1) * p / 100]
}

/// Drives `workload` (sorted by arrival) through a [`Server`] on the
/// simulated clock: requests are enqueued as the clock passes their
/// arrival, the server batches work-conservingly, and the clock idles
/// forward when the queue runs dry before the next arrival.
pub fn run_open_loop(
    session: &mut Session,
    admission: AdmissionControl,
    batch_window: usize,
    workload: Vec<Request>,
) -> Result<LoadStats, SimError> {
    let mut server = Server::new(session, admission, batch_window);
    let mut pending = workload.into_iter().peekable();
    let mut latencies: Vec<f64> = Vec::new();
    let mut hist: BTreeMap<usize, usize> = BTreeMap::new();
    let mut rejected = 0usize;
    let mut total_sweep_time = 0.0f64;
    loop {
        while pending.peek().is_some_and(|r| r.arrival <= server.clock()) {
            server.submit(pending.next().expect("peeked"));
        }
        if server.queue_len() == 0 {
            match pending.next() {
                Some(r) => {
                    server.advance_to(r.arrival);
                    server.submit(r);
                }
                None => break,
            }
        }
        if let Some(batch) = server.step()? {
            latencies.extend(batch.served.iter().map(|s| s.latency));
            rejected += batch.rejected.len();
            total_sweep_time += batch.sweep_time;
            if batch.batch_size > 0 {
                *hist.entry(batch.batch_size).or_insert(0) += 1;
            }
        }
    }
    let served = latencies.len();
    let makespan = server.clock();
    Ok(LoadStats {
        served,
        rejected,
        reject_rate: rejected as f64 / (served + rejected).max(1) as f64,
        p50_latency: percentile(&latencies, 50),
        p99_latency: percentile(&latencies, 99),
        queries_per_sec: if makespan > 0.0 {
            served as f64 / makespan
        } else {
            0.0
        },
        batch_hist: hist.into_iter().collect(),
        makespan,
        total_sweep_time,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hongtu_core::{CommMode, HongTuConfig, OverlapMode};
    use hongtu_datasets::dataset::{Dataset, DatasetKey};
    use hongtu_datasets::load;
    use hongtu_nn::ModelKind;
    use hongtu_sim::MachineConfig;

    fn dataset() -> Dataset {
        load(DatasetKey::Rdt, &mut SeededRng::new(99))
    }

    fn session(ds: &Dataset, gpus: usize) -> Session {
        let cfg = HongTuConfig::builder()
            .machine(MachineConfig::scaled(gpus, 512 << 20))
            .comm(CommMode::P2pRu)
            .reorganize(true)
            .overlap(OverlapMode::Off)
            .infer()
            .build()
            .expect("valid config");
        Session::new(ds, ModelKind::Gcn, 16, 2, 4, cfg).expect("session")
    }

    fn request(id: u64, vertices: Vec<usize>, arrival: f64) -> Request {
        Request {
            id,
            vertices,
            arrival,
        }
    }

    /// A budget no cone can fit yields a typed `Overloaded` response —
    /// the sweep is never attempted, so there is no `SimError` of any
    /// kind, let alone an OOM.
    #[test]
    fn over_budget_request_is_rejected_typed_not_oom() {
        let ds = dataset();
        let mut sess = session(&ds, 2);
        let admission = AdmissionControl::with_budget(vec![1; 2]);
        let mut server = Server::new(&mut sess, admission, 4);
        server.submit(request(7, vec![0, 1], 0.0));
        let report = server
            .step()
            .expect("rejection must not surface as SimError")
            .expect("queue was non-empty");
        assert_eq!(report.batch_size, 0);
        assert!(report.served.is_empty());
        assert_eq!(report.sweep_time, 0.0);
        assert_eq!(report.rejected.len(), 1);
        let rej = &report.rejected[0];
        assert_eq!(rej.id, 7);
        assert_eq!(rej.budget_bytes, vec![1; 2]);
        assert!(
            rej.cone_bytes
                .iter()
                .zip(&rej.budget_bytes)
                .any(|(c, b)| c > b),
            "rejection must carry the over-budget cone cost: {:?}",
            rej.cone_bytes
        );
        assert_eq!(server.queue_len(), 0, "rejected request leaves the queue");
    }

    /// Under the session's own staging budget every request fits (its
    /// cone is a subset of the full sweep the slots were sized for):
    /// nothing is rejected and FIFO order is preserved within the batch.
    #[test]
    fn default_budget_serves_all_in_fifo_order() {
        let ds = dataset();
        let n = ds.graph.num_vertices();
        let mut sess = session(&ds, 2);
        let admission = AdmissionControl::from_session(&sess);
        let mut server = Server::new(&mut sess, admission, 8);
        server.submit(request(1, vec![0], 0.0));
        server.submit(request(2, vec![n / 2, 0], 0.1));
        server.submit(request(3, vec![n - 1], 0.2));
        let report = server.step().expect("serve").expect("non-empty queue");
        assert!(report.rejected.is_empty());
        assert_eq!(report.batch_size, 3);
        let ids: Vec<u64> = report.served.iter().map(|s| s.id).collect();
        assert_eq!(ids, vec![1, 2, 3]);
        for s in &report.served {
            assert!(s.latency > 0.0);
            assert!(s.logits.rows() >= 1);
        }
        assert_eq!(report.served[1].logits.rows(), 2);
        assert!(report.active_steps < report.total_steps || report.batch_size == 3);
    }

    /// `batch_window = 1` degenerates to one sweep per request, still in
    /// submission order across steps.
    #[test]
    fn batch_window_caps_batch_size_fifo_across_steps() {
        let ds = dataset();
        let mut sess = session(&ds, 1);
        let admission = AdmissionControl::from_session(&sess);
        let mut server = Server::new(&mut sess, admission, 1);
        for (k, v) in [(10u64, 0usize), (11, 3), (12, 5)] {
            server.submit(request(k, vec![v], 0.0));
        }
        let mut order = Vec::new();
        while let Some(report) = server.step().expect("serve") {
            assert_eq!(report.batch_size, 1);
            order.extend(report.served.iter().map(|s| s.id));
        }
        assert_eq!(order, vec![10, 11, 12]);
    }

    /// Served rows are bitwise equal to the same rows of a full
    /// `infer_epoch` on an identically seeded fresh session.
    #[test]
    fn served_logits_match_full_inference_rows() {
        let ds = dataset();
        let n = ds.graph.num_vertices();
        let vertices = [0usize, 1, n / 3, n - 1];
        let served = {
            let mut sess = session(&ds, 2);
            let admission = AdmissionControl::from_session(&sess);
            let mut server = Server::new(&mut sess, admission, 4);
            server.submit(request(0, vertices.to_vec(), 0.0));
            let report = server.step().expect("serve").expect("non-empty queue");
            report.served[0].logits.clone()
        };
        let full = {
            let mut sess = session(&ds, 2);
            sess.infer_epoch().expect("infer epoch").logits
        };
        assert_eq!(served, full.gather_rows(&vertices));
    }

    #[test]
    fn poisson_workload_arrivals_monotone_nondecreasing() {
        let mut rng = SeededRng::new(1234);
        let reqs = poisson_workload(100, 50, 8.0, 5, &mut rng);
        assert_eq!(reqs.len(), 50);
        let mut prev = 0.0f64;
        for (k, r) in reqs.iter().enumerate() {
            assert_eq!(r.id, k as u64);
            assert_eq!(r.vertices.len(), 5);
            assert!(r.vertices.iter().all(|&v| v < 100));
            assert!(r.arrival >= prev, "arrivals must be non-decreasing");
            assert!(r.arrival.is_finite());
            prev = r.arrival;
        }
        assert!(prev > 0.0);
    }

    #[test]
    fn percentile_is_nearest_rank() {
        assert_eq!(percentile(&[], 99), 0.0);
        assert_eq!(percentile(&[4.0], 50), 4.0);
        let sample: Vec<f64> = (1..=100).map(|k| k as f64).collect();
        assert_eq!(percentile(&sample, 50), 50.0);
        assert_eq!(percentile(&sample, 99), 99.0);
        assert_eq!(percentile(&sample, 100), 100.0);
        assert_eq!(percentile(&sample, 0), 1.0);
    }

    /// Open-loop smoke: under the session's own budget every request is
    /// served, the tail is finite, and the histogram accounts for every
    /// served request.
    #[test]
    fn open_loop_under_budget_serves_everything() {
        let ds = dataset();
        let n = ds.graph.num_vertices();
        let mut sess = session(&ds, 2);
        let admission = AdmissionControl::from_session(&sess);
        let mut rng = SeededRng::new(7);
        let workload = poisson_workload(n, 10, 50.0, 3, &mut rng);
        let stats = run_open_loop(&mut sess, admission, 4, workload).expect("open loop");
        assert_eq!(stats.served, 10);
        assert_eq!(stats.rejected, 0);
        assert_eq!(stats.reject_rate, 0.0);
        assert!(stats.p50_latency.is_finite() && stats.p50_latency > 0.0);
        assert!(stats.p99_latency.is_finite() && stats.p99_latency >= stats.p50_latency);
        assert!(stats.queries_per_sec > 0.0);
        assert!(stats.makespan > 0.0);
        assert!(stats.total_sweep_time > 0.0);
        let hist_total: usize = stats
            .batch_hist
            .iter()
            .map(|(size, count)| size * count)
            .sum();
        assert_eq!(hist_total, 10);
        assert!(stats
            .batch_hist
            .iter()
            .all(|&(size, _)| (1..=4).contains(&size)));
    }
}
