//! `verify-plan` — run the static plan verifier against a dataset/partition
//! configuration and print the diagnostic report.
//!
//! Usage:
//!   verify-plan [--dataset rdt|opt|it|opr|fds|all] [--gpus M] [--chunks N] [--seed S]
//!
//! Builds the full execution-plan triple (two-level partition, dedup plan,
//! per-GPU buffer plans) exactly as the engine would, then runs all four
//! verifier passes. Exits 0 if every plan is clean, 1 if any diagnostic
//! fires (or on bad arguments).

use hongtu_core::cli::{parse_datasets, FlagParser};
use hongtu_datasets::{load, DatasetKey};
use hongtu_partition::{DedupPlan, GpuBufferPlan, TwoLevelPartition};
use hongtu_tensor::SeededRng;
use hongtu_verify::verify_all;

struct Args {
    datasets: Vec<DatasetKey>,
    gpus: usize,
    chunks: usize,
    seed: u64,
}

const USAGE: &str = "usage: verify-plan [--dataset rdt|opt|it|opr|fds|all] \
                     [--gpus M] [--chunks N] [--seed S]";

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        datasets: vec![DatasetKey::It],
        gpus: 4,
        chunks: 4,
        seed: 42,
    };
    let mut p = FlagParser::new(argv.to_vec());
    while let Some(flag) = p.next_flag() {
        match flag.as_str() {
            "--dataset" => args.datasets = p.value_with("--dataset", parse_datasets)?,
            "--gpus" => args.gpus = p.parse_value("--gpus")?,
            "--chunks" => args.chunks = p.parse_value("--chunks")?,
            "--seed" => args.seed = p.parse_value("--seed")?,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    if args.gpus == 0 || args.chunks == 0 {
        return Err("--gpus and --chunks must be at least 1".to_string());
    }
    Ok(args)
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(1);
        }
    };

    let mut any_bad = false;
    for key in &args.datasets {
        let mut rng = SeededRng::new(args.seed);
        let ds = load(*key, &mut rng);
        println!(
            "{} ({}): |V| = {}, |E| = {}, {} GPUs x {} chunks, seed {}",
            key.abbrev(),
            key.real_name(),
            ds.num_vertices(),
            ds.num_edges(),
            args.gpus,
            args.chunks,
            args.seed
        );

        // The planner asserts every partition has at least `chunks`
        // vertices; turn that panic into a clean CLI error (hook swapped
        // out so the backtrace doesn't hit stderr).
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let built = std::panic::catch_unwind(|| {
            TwoLevelPartition::build(&ds.graph, args.gpus, args.chunks, ds.seed)
        });
        std::panic::set_hook(hook);
        let plan = match built {
            Ok(p) => p,
            Err(_) => {
                eprintln!(
                    "  cannot build a {} x {} plan for this graph \
                     (each partition needs at least {} vertices)",
                    args.gpus, args.chunks, args.chunks
                );
                std::process::exit(1);
            }
        };
        let dedup = DedupPlan::build(&plan);
        let bufplans = GpuBufferPlan::build_all(&plan, &dedup);
        let report = verify_all(&ds.graph, &plan, &dedup, &bufplans);

        if report.is_ok() {
            println!("  all four passes clean (partition, dedup, buffers, volumes)\n");
        } else {
            any_bad = true;
            println!("  {} diagnostic(s):", report.diagnostics.len());
            for line in report.render().lines() {
                println!("    {line}");
            }
            println!();
        }
    }
    std::process::exit(if any_bad { 1 } else { 0 });
}
