//! `lint` — in-repo source lint for the invariants `grep` can't hold.
//!
//! Three rules, all token-level scans over the workspace sources (no
//! parsing, no dependencies):
//!
//! 1. **Diagnostic catalogue coverage.** Every `DiagCode` variant in
//!    `crates/verify/src/diag.rs` must have exactly one catalogue row in
//!    `DESIGN.md` (a `| CODE |` table cell) and at least one mutation
//!    test referencing it (by variant name or by `"CODE"` string) under
//!    `crates/verify/tests/` or `tests/`. A diagnostic nobody can look
//!    up, or that no corruption provably triggers, is dead weight.
//! 2. **Unsafe discipline.** The workspace crates carry
//!    `#![forbid(unsafe_code)]`, but that attribute does not cover
//!    bin/test targets — so the token is forbidden outright outside
//!    `crates/parallel`, and inside it every non-comment use must carry
//!    a `SAFETY` comment within the preceding 8 lines.
//! 3. **Tagging chokepoint.** `Machine::tag` calls are how trace events
//!    acquire schedule metadata; every call site outside the engine's
//!    emission layer (and the method's own crate) bypasses the
//!    provenance discipline passes 5–9 certify. No `.tag(` outside the
//!    allowlist.
//!
//! Exits 0 when clean, 1 with one line per violation otherwise. Wired
//! into `tools/check.sh` and CI's `check` job.

use std::fs;
use std::path::{Path, PathBuf};

/// The token patterns the lint hunts for, assembled at compile time so
/// this file — which the lint also scans — never contains them itself.
const UNSAFE_TOKEN: &str = concat!("uns", "afe ");
const TAG_TOKEN: &str = concat!(".t", "ag(");

/// Files allowed to contain `Machine::tag` calls: the engine's emission
/// layer and the method's defining module (incl. its unit tests).
const TAG_ALLOWLIST: [&str; 2] = ["crates/core/src/engine.rs", "crates/sim/src/machine.rs"];

fn main() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let mut violations = Vec::new();

    let sources = rust_sources(&root);
    check_diag_catalogue(&root, &mut violations);
    check_unsafe_discipline(&root, &sources, &mut violations);
    check_tag_chokepoint(&root, &sources, &mut violations);

    if violations.is_empty() {
        println!("lint: clean ({} source files scanned)", sources.len());
        return;
    }
    for v in &violations {
        eprintln!("lint: {v}");
    }
    eprintln!("lint: {} violation(s)", violations.len());
    std::process::exit(1);
}

/// All `.rs` files under `src/` and `crates/`, skipping build output.
fn rust_sources(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    for top in ["src", "crates"] {
        walk(&root.join(top), &mut out);
    }
    out.sort();
    out
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            walk(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .display()
        .to_string()
}

fn read(path: &Path) -> String {
    fs::read_to_string(path).unwrap_or_default()
}

// ---------------------------------------- rule 1: diagnostic catalogue

/// Extracts `(Variant, "CODE")` pairs from the `DiagCode::code()` match.
/// Filters on shape — a single-identifier variant mapped to a
/// letter+digits code — so the `paper_ref()` arms (multi-variant
/// patterns, `§`-prefixed strings) in the same file don't match.
fn diag_codes(diag_src: &str) -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> = Vec::new();
    for line in diag_src.lines() {
        let line = line.trim();
        let Some(rest) = line.strip_prefix("DiagCode::") else {
            continue;
        };
        let Some((variant, rhs)) = rest.split_once("=>") else {
            continue;
        };
        let variant = variant.trim();
        if variant.is_empty() || !variant.chars().all(|c| c.is_ascii_alphanumeric()) {
            continue;
        }
        let Some(code) = rhs
            .trim()
            .strip_prefix('"')
            .and_then(|r| r.split('"').next())
        else {
            continue;
        };
        let mut chars = code.chars();
        let shaped = chars.next().is_some_and(|c| c.is_ascii_uppercase())
            && code.len() > 1
            && chars.all(|c| c.is_ascii_digit());
        if !shaped {
            continue;
        }
        if !out.iter().any(|(v, _)| v == variant) {
            out.push((variant.to_string(), code.to_string()));
        }
    }
    out
}

fn check_diag_catalogue(root: &Path, violations: &mut Vec<String>) {
    let diag_src = read(&root.join("crates/verify/src/diag.rs"));
    let codes = diag_codes(&diag_src);
    if codes.is_empty() {
        violations.push("crates/verify/src/diag.rs: no DiagCode code() arms found".to_string());
        return;
    }

    let design = read(&root.join("DESIGN.md"));
    let mut test_corpus = String::new();
    for dir in ["crates/verify/tests", "tests"] {
        let mut files = Vec::new();
        walk(&root.join(dir), &mut files);
        for f in files {
            test_corpus.push_str(&read(&f));
        }
    }

    for (variant, code) in &codes {
        let cell = format!("| {code} |");
        let rows = design.lines().filter(|l| l.contains(&cell)).count();
        if rows != 1 {
            violations.push(format!(
                "DESIGN.md: diagnostic {code} ({variant}) has {rows} catalogue rows, want \
                 exactly 1"
            ));
        }
        let by_variant = format!("DiagCode::{variant}");
        let by_code = format!("\"{code}\"");
        if !test_corpus.contains(&by_variant) && !test_corpus.contains(&by_code) {
            violations.push(format!(
                "{code} ({variant}): no mutation test references it under \
                 crates/verify/tests/ or tests/"
            ));
        }
    }
}

// ----------------------------------- rule 2: memory-safety discipline

fn check_unsafe_discipline(root: &Path, sources: &[PathBuf], violations: &mut Vec<String>) {
    for path in sources {
        let relpath = rel(root, path);
        let inside_parallel = relpath.starts_with("crates/parallel/");
        let src = read(path);
        let lines: Vec<&str> = src.lines().collect();
        for (idx, line) in lines.iter().enumerate() {
            if !line.contains(UNSAFE_TOKEN) {
                continue;
            }
            if !inside_parallel {
                violations.push(format!(
                    "{relpath}:{}: {}code outside crates/parallel",
                    idx + 1,
                    UNSAFE_TOKEN
                ));
                continue;
            }
            if line.trim_start().starts_with("//") {
                continue;
            }
            let start = idx.saturating_sub(8);
            let documented = lines[start..idx].iter().any(|l| l.contains("SAFETY"));
            if !documented {
                violations.push(format!(
                    "{relpath}:{}: undocumented {}block (add a // SAFETY: comment within \
                     the preceding 8 lines)",
                    idx + 1,
                    UNSAFE_TOKEN
                ));
            }
        }
    }
}

// ------------------------------------------ rule 3: tagging chokepoint

fn check_tag_chokepoint(root: &Path, sources: &[PathBuf], violations: &mut Vec<String>) {
    for path in sources {
        let relpath = rel(root, path);
        if TAG_ALLOWLIST.contains(&relpath.as_str()) {
            continue;
        }
        let src = read(path);
        for (idx, line) in src.lines().enumerate() {
            if line.trim_start().starts_with("//") {
                continue;
            }
            if line.contains(TAG_TOKEN) {
                violations.push(format!(
                    "{relpath}:{}: Machine::tag call outside the engine's emission layer \
                     (allowed: {})",
                    idx + 1,
                    TAG_ALLOWLIST.join(", ")
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diag_code_extraction_parses_match_arms() {
        let src = r#"
            match self {
                DiagCode::ChunkOverlap => "P001",
                DiagCode::DroppedContribution => "F801",
            }
        "#;
        assert_eq!(
            diag_codes(src),
            vec![
                ("ChunkOverlap".to_string(), "P001".to_string()),
                ("DroppedContribution".to_string(), "F801".to_string()),
            ]
        );
    }

    /// The lint must pass on the repo it ships in — this is the same
    /// invocation `tools/check.sh` runs, minus the process boundary.
    #[test]
    fn repo_is_lint_clean() {
        let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        let sources = rust_sources(&root);
        assert!(!sources.is_empty());
        let mut violations = Vec::new();
        check_diag_catalogue(&root, &mut violations);
        check_unsafe_discipline(&root, &sources, &mut violations);
        check_tag_chokepoint(&root, &sources, &mut violations);
        assert!(violations.is_empty(), "{}", violations.join("\n"));
    }
}
