//! `verify-schedule` — statically certify a configuration's execution
//! schedule without running it.
//!
//! Usage:
//!   verify-schedule [--dataset rdt|opt|it|opr|fds|all] [--gpus M] [--chunks N]
//!                   [--seed S] [--model gcn|gat|sage|gin|commnet|ggnn]
//!                   [--hidden H] [--layers L] [--comm vanilla|p2p|p2pru|full]
//!                   [--memory recompute|hybrid] [--overlap off|doublebuffer]
//!                   [--mode train|infer] [--budget B] [--measure]
//!
//! Builds the engine exactly as training would, then *synthesizes* the
//! epoch schedule symbolically — the executor's own step functions
//! replayed against a no-compute backend — and runs the static
//! certification passes over it: the vector-clock happens-before
//! analysis (pass 6, `R4xx`), resource lifetime analysis (pass 7,
//! `L6xx`), and — when the config is small enough for it to be
//! exhaustive, or when `--budget` forces it — exploration of every
//! barrier-respecting interleaving (pass 8, `X7xx`). Also prints the
//! plan-level static peak-memory bound per device; with `--measure`, one
//! real epoch is then executed and the measured peaks are checked
//! against the bound. Exits 0 if every configuration certifies, 1 if
//! any diagnostic fires (or on bad arguments).

use hongtu_core::cli::{
    parse_comm, parse_datasets, parse_memory, parse_mode, parse_model, parse_overlap,
};
use hongtu_core::{CommMode, HongTuConfig, HongTuEngine, MemoryStrategy, Mode, OverlapMode};
use hongtu_datasets::{load, DatasetKey};
use hongtu_nn::ModelKind;
use hongtu_tensor::SeededRng;
use hongtu_verify::DEFAULT_EXPLORE_BUDGET;

struct Args {
    datasets: Vec<DatasetKey>,
    gpus: usize,
    chunks: usize,
    seed: u64,
    model: ModelKind,
    hidden: usize,
    layers: usize,
    comm: CommMode,
    memory: MemoryStrategy,
    overlap: OverlapMode,
    mode: Mode,
    budget: Option<usize>,
    measure: bool,
}

const USAGE: &str = "usage: verify-schedule [--dataset rdt|opt|it|opr|fds|all] \
                     [--gpus M] [--chunks N] [--seed S] \
                     [--model gcn|gat|sage|gin|commnet|ggnn] [--hidden H] [--layers L] \
                     [--comm vanilla|p2p|p2pru|full] [--memory recompute|hybrid] \
                     [--overlap off|doublebuffer] [--mode train|infer] \
                     [--budget B] [--measure]";

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        datasets: vec![DatasetKey::Rdt],
        gpus: 4,
        chunks: 4,
        seed: 42,
        model: ModelKind::Gcn,
        hidden: 16,
        layers: 2,
        comm: CommMode::P2pRu,
        memory: MemoryStrategy::Hybrid,
        overlap: OverlapMode::Off,
        mode: Mode::Train,
        budget: None,
        measure: false,
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--dataset" => args.datasets = parse_datasets(&value("--dataset")?)?,
            "--gpus" => {
                args.gpus = value("--gpus")?
                    .parse()
                    .map_err(|e| format!("--gpus: {e}"))?
            }
            "--chunks" => {
                args.chunks = value("--chunks")?
                    .parse()
                    .map_err(|e| format!("--chunks: {e}"))?
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--model" => args.model = parse_model(&value("--model")?)?,
            "--hidden" => {
                args.hidden = value("--hidden")?
                    .parse()
                    .map_err(|e| format!("--hidden: {e}"))?
            }
            "--layers" => {
                args.layers = value("--layers")?
                    .parse()
                    .map_err(|e| format!("--layers: {e}"))?
            }
            "--comm" => args.comm = parse_comm(&value("--comm")?)?,
            "--memory" => args.memory = parse_memory(&value("--memory")?)?,
            "--overlap" => args.overlap = parse_overlap(&value("--overlap")?)?,
            "--mode" => args.mode = parse_mode(&value("--mode")?)?,
            "--budget" => {
                args.budget = Some(
                    value("--budget")?
                        .parse()
                        .map_err(|e| format!("--budget: {e}"))?,
                )
            }
            "--measure" => args.measure = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    if args.gpus == 0 || args.chunks == 0 || args.layers == 0 {
        return Err("--gpus, --chunks and --layers must be at least 1".to_string());
    }
    Ok(args)
}

fn mib(bytes: usize) -> f64 {
    bytes as f64 / (1 << 20) as f64
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(1);
        }
    };

    // One config for every dataset, built through the validating builder.
    let config = match HongTuConfig::builder()
        .gpus(args.gpus)
        .gpu_mem_mb(1024)
        .comm(args.comm)
        .memory(args.memory)
        .reorganize(args.comm != CommMode::Vanilla)
        .overlap(args.overlap)
        .mode(args.mode)
        .build()
    {
        Ok(c) => c,
        Err(e) => {
            eprintln!("invalid configuration: {e}");
            std::process::exit(1);
        }
    };

    let mut any_bad = false;
    for key in &args.datasets {
        let mut rng = SeededRng::new(args.seed);
        let ds = load(*key, &mut rng);
        println!(
            "{} ({}): |V| = {}, |E| = {}, {} {}x{} on {} GPUs x {} chunks, {:?}/{:?}/{:?}/{:?}",
            key.abbrev(),
            key.real_name(),
            ds.num_vertices(),
            ds.num_edges(),
            args.model.name(),
            args.hidden,
            args.layers,
            args.gpus,
            args.chunks,
            args.comm,
            args.memory,
            args.overlap,
            args.mode,
        );

        let mut engine = match HongTuEngine::new(
            &ds,
            args.model,
            args.hidden,
            args.layers,
            args.chunks,
            config.clone(),
        ) {
            Ok(e) => e,
            Err(e) => {
                eprintln!("  engine construction failed: {e}");
                std::process::exit(1);
            }
        };

        let explore = args.budget.or_else(|| {
            engine
                .session()
                .exhaustive_exploration_feasible()
                .then_some(DEFAULT_EXPLORE_BUDGET)
        });
        let synth = match engine.session().synthesize_schedule() {
            Ok(t) => t,
            Err(e) => {
                eprintln!("  schedule synthesis failed: {e}");
                std::process::exit(1);
            }
        };
        let report = hongtu_verify::verify_schedule(&synth, explore);
        match explore {
            Some(b) => println!(
                "  {} events synthesized; passes 6-8 (interleaving budget {b})",
                synth.len()
            ),
            None => println!(
                "  {} events synthesized; passes 6-7 (config too large for \
                 exhaustive interleavings; force with --budget)",
                synth.len()
            ),
        }
        if report.is_ok() {
            println!("  schedule certified clean");
        } else {
            any_bad = true;
            println!("  {} diagnostic(s):", report.diagnostics.len());
            for line in report.render().lines() {
                println!("    {line}");
            }
        }

        let bound = engine.session().static_memory_bound();
        for (i, b) in bound.gpu.iter().enumerate() {
            println!("  static bound gpu{i}: {:.2} MiB", mib(*b));
        }
        println!("  static bound host: {:.2} MiB", mib(bound.host));

        if args.measure {
            let run = match args.mode {
                Mode::Train => engine.train_epoch().map(|_| ()).map_err(|e| e.to_string()),
                Mode::Infer => engine.infer_epoch().map(|_| ()).map_err(|e| e.to_string()),
            };
            if let Err(msg) = run {
                eprintln!("  measured epoch failed: {msg}");
                std::process::exit(1);
            }
            for i in 0..args.gpus {
                let peak = engine.machine().gpu_memory(i).peak();
                let ok = peak <= bound.gpu[i];
                any_bad |= !ok;
                println!(
                    "  measured gpu{i} peak: {:.2} MiB {}",
                    mib(peak),
                    if ok { "<= bound" } else { "EXCEEDS BOUND" }
                );
            }
            let host_peak = engine.machine().host_memory().peak();
            let ok = host_peak <= bound.host;
            any_bad |= !ok;
            println!(
                "  measured host peak: {:.2} MiB {}",
                mib(host_peak),
                if ok { "<= bound" } else { "EXCEEDS BOUND" }
            );
        }
        println!();
    }
    std::process::exit(if any_bad { 1 } else { 0 });
}
