//! `verify-dataflow` — statically certify *value conservation* for a
//! configuration's execution schedule without running it.
//!
//! Usage:
//!   verify-dataflow [--dataset rdt|opt|it|opr|fds|all] [--gpus M] [--chunks N]
//!                   [--seed S] [--model gcn|gat|sage|gin|commnet|ggnn]
//!                   [--hidden H] [--layers L] [--comm vanilla|p2p|p2pru|full]
//!                   [--memory recompute|hybrid] [--overlap off|doublebuffer]
//!                   [--mode train|infer]
//!
//! Where `verify-schedule` proves the synthesized schedule is *safe*
//! (race-free, lifetime-clean), this bin proves it is *correct at the
//! value level*: pass 9 reconstructs per-aggregation contribution
//! multisets from the schedule's provenance annotations and balances
//! them against a `DataflowSpec` derived independently from the
//! partition/dedup/buffer plans — dropped or double-counted aggregation
//! inputs (`F801`/`F802`), clobbered activations (`F803`), early-flushed
//! or orphaned gradients (`F804`/`F805`), and dedup-vs-vanilla multiset
//! divergence (`F806`). Exits 0 if every configuration certifies, 1 if
//! any diagnostic fires (or on bad arguments).

use hongtu_core::cli::{
    parse_comm, parse_datasets, parse_memory, parse_mode, parse_model, parse_overlap, FlagParser,
};
use hongtu_core::{CommMode, HongTuConfig, HongTuEngine, MemoryStrategy, Mode, OverlapMode};
use hongtu_datasets::{load, DatasetKey};
use hongtu_nn::ModelKind;
use hongtu_tensor::SeededRng;

struct Args {
    datasets: Vec<DatasetKey>,
    gpus: usize,
    chunks: usize,
    seed: u64,
    model: ModelKind,
    hidden: usize,
    layers: usize,
    comm: CommMode,
    memory: MemoryStrategy,
    overlap: OverlapMode,
    mode: Mode,
}

const USAGE: &str = "usage: verify-dataflow [--dataset rdt|opt|it|opr|fds|all] \
                     [--gpus M] [--chunks N] [--seed S] \
                     [--model gcn|gat|sage|gin|commnet|ggnn] [--hidden H] [--layers L] \
                     [--comm vanilla|p2p|p2pru|full] [--memory recompute|hybrid] \
                     [--overlap off|doublebuffer] [--mode train|infer]";

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        datasets: vec![DatasetKey::Rdt],
        gpus: 4,
        chunks: 4,
        seed: 42,
        model: ModelKind::Gcn,
        hidden: 16,
        layers: 2,
        comm: CommMode::P2pRu,
        memory: MemoryStrategy::Hybrid,
        overlap: OverlapMode::Off,
        mode: Mode::Train,
    };
    let mut it = FlagParser::new(argv.to_vec());
    while let Some(flag) = it.next_flag() {
        match flag.as_str() {
            "--dataset" => args.datasets = it.value_with("--dataset", parse_datasets)?,
            "--gpus" => args.gpus = it.parse_value("--gpus")?,
            "--chunks" => args.chunks = it.parse_value("--chunks")?,
            "--seed" => args.seed = it.parse_value("--seed")?,
            "--model" => args.model = it.value_with("--model", parse_model)?,
            "--hidden" => args.hidden = it.parse_value("--hidden")?,
            "--layers" => args.layers = it.parse_value("--layers")?,
            "--comm" => args.comm = it.value_with("--comm", parse_comm)?,
            "--memory" => args.memory = it.value_with("--memory", parse_memory)?,
            "--overlap" => args.overlap = it.value_with("--overlap", parse_overlap)?,
            "--mode" => args.mode = it.value_with("--mode", parse_mode)?,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    if args.gpus == 0 || args.chunks == 0 || args.layers == 0 {
        return Err("--gpus, --chunks and --layers must be at least 1".to_string());
    }
    Ok(args)
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(1);
        }
    };

    let config = match HongTuConfig::builder()
        .gpus(args.gpus)
        .gpu_mem_mb(1024)
        .comm(args.comm)
        .memory(args.memory)
        .reorganize(args.comm != CommMode::Vanilla)
        .overlap(args.overlap)
        .mode(args.mode)
        .build()
    {
        Ok(c) => c,
        Err(e) => {
            eprintln!("invalid configuration: {e}");
            std::process::exit(1);
        }
    };

    let mut any_bad = false;
    for key in &args.datasets {
        let mut rng = SeededRng::new(args.seed);
        let ds = load(*key, &mut rng);
        println!(
            "{} ({}): |V| = {}, |E| = {}, {} {}x{} on {} GPUs x {} chunks, {:?}/{:?}/{:?}/{:?}",
            key.abbrev(),
            key.real_name(),
            ds.num_vertices(),
            ds.num_edges(),
            args.model.name(),
            args.hidden,
            args.layers,
            args.gpus,
            args.chunks,
            args.comm,
            args.memory,
            args.overlap,
            args.mode,
        );

        let engine = match HongTuEngine::new(
            &ds,
            args.model,
            args.hidden,
            args.layers,
            args.chunks,
            config.clone(),
        ) {
            Ok(e) => e,
            Err(e) => {
                eprintln!("  engine construction failed: {e}");
                std::process::exit(1);
            }
        };

        let synth = match engine.session().synthesize_schedule() {
            Ok(t) => t,
            Err(e) => {
                eprintln!("  schedule synthesis failed: {e}");
                std::process::exit(1);
            }
        };
        let tagged = synth
            .events()
            .flat_map(|e| e.accesses.iter())
            .filter(|a| a.prov.is_some())
            .count();
        println!(
            "  {} events synthesized, {} provenance-tagged accesses; pass 9 (F8xx)",
            synth.len(),
            tagged
        );

        let report = match engine.session().certify_dataflow() {
            Ok(r) => r,
            Err(e) => {
                eprintln!("  certification failed: {e}");
                std::process::exit(1);
            }
        };
        if report.is_ok() {
            println!("  dataflow certified conserved");
        } else {
            any_bad = true;
            println!("  {} diagnostic(s):", report.diagnostics.len());
            for line in report.render().lines() {
                println!("    {line}");
            }
        }
        println!();
    }
    std::process::exit(if any_bad { 1 } else { 0 });
}
