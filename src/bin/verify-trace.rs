//! `verify-trace` — run the happens-before schedule checker against a
//! recorded execution trace of the HongTu engine and print the report.
//!
//! Usage:
//!   verify-trace [--dataset rdt|opt|it|opr|fds|all] [--gpus M] [--chunks N]
//!                [--seed S] [--model gcn|gat|sage|gin|commnet|ggnn]
//!                [--hidden H] [--layers L] [--comm vanilla|p2p|p2pru|full]
//!                [--memory recompute|hybrid] [--epochs E] [--determinism]
//!                [--exec sequential|parallel] [--overlap off|doublebuffer]
//!                [--mode train|infer]
//!
//! Builds the engine exactly as training would (or a forward-only
//! inference session under `--mode infer`), records one (or more)
//! epochs into an unbounded event trace, and runs the vector-clock
//! happens-before analysis over it: data races on shared buffers,
//! reads of unpopulated or stale checkpoint slots, and batch barrier
//! coverage (`R4xx`/`S5xx` codes). With `--determinism`, a second
//! identical engine is traced and the two schedules are compared modulo
//! commutable reorderings (`S502`). Exits 0 if every trace is clean,
//! 1 if any diagnostic fires (or on bad arguments).

use hongtu_core::cli::{
    parse_comm, parse_datasets, parse_exec, parse_memory, parse_mode, parse_model, parse_overlap,
    FlagParser,
};
use hongtu_core::{
    CommMode, ExecutionMode, HongTuConfig, HongTuEngine, MemoryStrategy, Mode, OverlapMode,
};
use hongtu_datasets::load;
use hongtu_datasets::DatasetKey;
use hongtu_nn::ModelKind;
use hongtu_sim::{MachineConfig, Trace};
use hongtu_tensor::SeededRng;
use hongtu_verify::{verify_determinism, verify_trace};

struct Args {
    datasets: Vec<DatasetKey>,
    gpus: usize,
    chunks: usize,
    seed: u64,
    model: ModelKind,
    hidden: usize,
    layers: usize,
    comm: CommMode,
    memory: MemoryStrategy,
    epochs: usize,
    determinism: bool,
    exec: ExecutionMode,
    overlap: OverlapMode,
    mode: Mode,
}

const USAGE: &str = "usage: verify-trace [--dataset rdt|opt|it|opr|fds|all] \
                     [--gpus M] [--chunks N] [--seed S] \
                     [--model gcn|gat|sage|gin|commnet|ggnn] [--hidden H] [--layers L] \
                     [--comm vanilla|p2p|p2pru|full] [--memory recompute|hybrid] \
                     [--epochs E] [--determinism] [--exec sequential|parallel] \
                     [--overlap off|doublebuffer] [--mode train|infer]";

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        datasets: vec![DatasetKey::Rdt],
        gpus: 4,
        chunks: 4,
        seed: 42,
        model: ModelKind::Gcn,
        hidden: 16,
        layers: 2,
        comm: CommMode::P2pRu,
        memory: MemoryStrategy::Hybrid,
        epochs: 1,
        determinism: false,
        exec: ExecutionMode::Sequential,
        overlap: OverlapMode::Off,
        mode: Mode::Train,
    };
    let mut p = FlagParser::new(argv.to_vec());
    while let Some(flag) = p.next_flag() {
        match flag.as_str() {
            "--dataset" => args.datasets = p.value_with("--dataset", parse_datasets)?,
            "--gpus" => args.gpus = p.parse_value("--gpus")?,
            "--chunks" => args.chunks = p.parse_value("--chunks")?,
            "--seed" => args.seed = p.parse_value("--seed")?,
            "--model" => args.model = p.value_with("--model", parse_model)?,
            "--hidden" => args.hidden = p.parse_value("--hidden")?,
            "--layers" => args.layers = p.parse_value("--layers")?,
            "--comm" => args.comm = p.value_with("--comm", parse_comm)?,
            "--memory" => args.memory = p.value_with("--memory", parse_memory)?,
            "--epochs" => args.epochs = p.parse_value("--epochs")?,
            "--determinism" => args.determinism = true,
            "--exec" => args.exec = p.value_with("--exec", parse_exec)?,
            "--overlap" => args.overlap = p.value_with("--overlap", parse_overlap)?,
            "--mode" => args.mode = p.value_with("--mode", parse_mode)?,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    if args.gpus == 0 || args.chunks == 0 || args.layers == 0 || args.epochs == 0 {
        return Err("--gpus, --chunks, --layers and --epochs must be at least 1".to_string());
    }
    Ok(args)
}

/// Runs `epochs` epochs (training or forward-only inference, per
/// `--mode`) under an unbounded trace and returns it.
fn traced_epochs(
    args: &Args,
    ds: &hongtu_datasets::Dataset,
    config: HongTuConfig,
) -> Result<Trace, String> {
    let mut engine = HongTuEngine::new(
        ds,
        args.model,
        args.hidden,
        args.layers,
        args.chunks,
        config,
    )
    .map_err(|e| format!("engine construction failed: {e}"))?;
    engine.machine_mut().enable_unbounded_trace();
    for _ in 0..args.epochs {
        match args.mode {
            Mode::Train => engine
                .train_epoch()
                .map(|_| ())
                .map_err(|e| format!("training failed: {e}"))?,
            Mode::Infer => engine
                .infer_epoch()
                .map(|_| ())
                .map_err(|e| format!("inference failed: {e}"))?,
        }
    }
    Ok(engine.machine().trace().clone())
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(1);
        }
    };

    // One validated config for every dataset and run; the builder surfaces
    // `ConfigError` (e.g. contradictory machine/overlap combinations)
    // instead of panicking inside engine construction.
    let config = match HongTuConfig::builder()
        .machine(MachineConfig::scaled(args.gpus, 1 << 30))
        .comm(args.comm)
        .memory(args.memory)
        .reorganize(args.comm != CommMode::Vanilla)
        .exec(args.exec)
        .overlap(args.overlap)
        .mode(args.mode)
        .build()
    {
        Ok(c) => c,
        Err(e) => {
            eprintln!("invalid configuration: {e}");
            std::process::exit(1);
        }
    };

    let mut any_bad = false;
    for key in &args.datasets {
        let mut rng = SeededRng::new(args.seed);
        let ds = load(*key, &mut rng);
        println!(
            "{} ({}): |V| = {}, |E| = {}, {} {}x{} on {} GPUs x {} chunks, {:?}/{:?}/{:?}/{:?}/{:?}, {} epoch(s)",
            key.abbrev(),
            key.real_name(),
            ds.num_vertices(),
            ds.num_edges(),
            args.model.name(),
            args.hidden,
            args.layers,
            args.gpus,
            args.chunks,
            args.comm,
            args.memory,
            args.exec,
            args.overlap,
            args.mode,
            args.epochs,
        );

        let trace = match traced_epochs(&args, &ds, config.clone()) {
            Ok(t) => t,
            Err(msg) => {
                eprintln!("  {msg}");
                std::process::exit(1);
            }
        };
        let report = verify_trace(&trace);
        if report.is_ok() {
            println!("  {} events: schedule certified clean", trace.len());
        } else {
            any_bad = true;
            println!(
                "  {} events, {} diagnostic(s):",
                trace.len(),
                report.diagnostics.len()
            );
            for line in report.render().lines() {
                println!("    {line}");
            }
        }

        if args.determinism {
            // Under the parallel executor, the reference run is the
            // *sequential* schedule: equivalence then certifies that the
            // worker-thread execution is a mere commutable reordering of
            // the reference, i.e. race-free by construction.
            let mut reference = config.clone();
            if args.exec == ExecutionMode::Parallel {
                reference.exec = ExecutionMode::Sequential;
            }
            let second = match traced_epochs(&args, &ds, reference) {
                Ok(t) => t,
                Err(msg) => {
                    eprintln!("  {msg}");
                    std::process::exit(1);
                }
            };
            let report = verify_determinism(&trace, &second);
            if report.is_ok() {
                if args.exec == ExecutionMode::Parallel {
                    println!(
                        "  determinism: parallel schedule equivalent to the sequential reference"
                    );
                } else {
                    println!("  determinism: second run produced an equivalent schedule");
                }
            } else {
                any_bad = true;
                println!("  determinism: {} diagnostic(s):", report.diagnostics.len());
                for line in report.render().lines() {
                    println!("    {line}");
                }
            }
        }
        println!();
    }
    std::process::exit(if any_bad { 1 } else { 0 });
}
