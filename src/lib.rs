//! Umbrella crate re-exporting the HongTu workspace.
//!
//! HongTu is a reproduction of "HongTu: Scalable Full-Graph GNN Training on
//! Multiple GPUs" (SIGMOD 2023, Wang et al.). The 4×A100 GPU platform of the
//! paper is replaced by a discrete-cost hardware simulator
//! (`hongtu_sim`); all training numerics are executed for real on the
//! host, so model semantics are bit-faithful to full-graph training.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every table and figure.

#![forbid(unsafe_code)]
pub use hongtu_cache as cache;
pub use hongtu_core as core;
pub use hongtu_datasets as datasets;
pub use hongtu_delta as delta;
pub use hongtu_graph as graph;
pub use hongtu_nn as nn;
pub use hongtu_parallel as parallel;
pub use hongtu_partition as partition;
pub use hongtu_serving as serving;
pub use hongtu_sim as sim;
pub use hongtu_stream as stream;
pub use hongtu_tensor as tensor;
pub use hongtu_verify as verify;
