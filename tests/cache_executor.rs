//! Certification of the hot-vertex GPU cache: enabling a cache policy
//! must change *pricing only* — losses and logits stay bitwise identical
//! to the cache-off run across the full
//! {model × gpus × overlap × comm} matrix while the simulated H2D
//! volume strictly drops on repeated-epoch workloads — and every
//! cache-on journal must certify clean under pass 11 (`H10xx`). The
//! delta path must invalidate cached copies of patched rows before the
//! repair sweep, and Paranoid validation must keep certifying the
//! schedules with the cache's trace accesses present.
//!
//! The bitwise contract holds by construction — the cache intercepts
//! simulated transfer charges, never the host-side numerics — so these
//! tests pin exactly the property pass 11 cannot see from the journal
//! alone.

use hongtu::core::{
    CacheOff, CachePolicy, CommMode, DegreeRanked, FrequencyRanked, HongTuConfig, Mode,
    OverlapMode, Session, ValidationLevel,
};
use hongtu::datasets::dataset::{Dataset, DatasetKey};
use hongtu::datasets::load;
use hongtu::delta::{Delta, DynamicGraph};
use hongtu::nn::ModelKind;
use hongtu::sim::MachineConfig;
use hongtu::tensor::{Matrix, SeededRng};
use std::sync::Arc;

fn test_seed() -> u64 {
    std::env::var("HONGTU_TEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(99)
}

fn dataset() -> Dataset {
    load(DatasetKey::Rdt, &mut SeededRng::new(test_seed()))
}

fn config(
    gpus: usize,
    comm: CommMode,
    overlap: OverlapMode,
    mode: Mode,
    cache: Arc<dyn CachePolicy>,
) -> HongTuConfig {
    HongTuConfig::builder()
        .machine(MachineConfig::scaled(gpus, 512 << 20))
        .comm(comm)
        .reorganize(comm != CommMode::Vanilla)
        .overlap(overlap)
        .mode(mode)
        .cache(cache)
        .build()
        .expect("valid config")
}

/// Two training epochs; returns the per-epoch losses (exact f32 bits),
/// the final logits, and the session for cache inspection.
fn train_two(ds: &Dataset, kind: ModelKind, cfg: HongTuConfig) -> (Vec<f32>, Matrix, Session) {
    let mut session = Session::new(ds, kind, 16, 2, 4, cfg).expect("session");
    let mut losses = Vec::new();
    {
        let mut trainer = session.trainer();
        for _ in 0..2 {
            losses.push(trainer.epoch().expect("train epoch").loss.loss);
        }
    }
    let logits = session.logits().clone();
    (losses, logits, session)
}

/// The central contract across the full ISSUE matrix: cache-on training
/// reproduces cache-off training bit for bit while moving strictly
/// fewer H2D bytes, and every cache journal certifies clean under
/// pass 11.
#[test]
fn cache_on_matches_cache_off_bitwise_across_matrix() {
    let ds = dataset();
    for kind in [ModelKind::Gcn, ModelKind::Gat, ModelKind::Sage] {
        for comm in [CommMode::Vanilla, CommMode::P2p, CommMode::P2pRu] {
            for gpus in [1usize, 2, 4] {
                for overlap in [OverlapMode::Off, OverlapMode::DoubleBuffer] {
                    let tag = format!("{} / {comm:?} / {gpus} GPUs / {overlap:?}", kind.name());
                    let (off_losses, off_logits, off_session) = train_two(
                        &ds,
                        kind,
                        config(gpus, comm, overlap, Mode::Train, Arc::new(CacheOff)),
                    );
                    let (on_losses, on_logits, on_session) = train_two(
                        &ds,
                        kind,
                        config(gpus, comm, overlap, Mode::Train, Arc::new(FrequencyRanked)),
                    );
                    assert_eq!(on_losses, off_losses, "{tag}: losses diverged");
                    assert_eq!(on_logits, off_logits, "{tag}: logits diverged");
                    assert!(off_session.cache().is_none(), "{tag}: Off built a cache");
                    let rt = on_session.cache().expect("cache runtime installed");
                    assert!(
                        rt.total_hits() > 0,
                        "{tag}: warm second epoch never hit the cache"
                    );
                    let h2d_off = off_session.machine().buckets().bytes_h2d;
                    let h2d_on = on_session.machine().buckets().bytes_h2d;
                    assert!(
                        h2d_on < h2d_off,
                        "{tag}: cache-on H2D {h2d_on} not strictly below {h2d_off}"
                    );
                    let report = on_session.certify_cache();
                    assert!(
                        report.is_ok(),
                        "{tag}: pass 11 rejected:\n{}",
                        report.render()
                    );
                }
            }
        }
    }
}

/// The degree-ranked fallback policy obeys the same contract (one
/// configuration suffices: the policy only changes the ranking).
#[test]
fn degree_policy_matches_bitwise_and_certifies() {
    let ds = dataset();
    let (off_losses, off_logits, _) = train_two(
        &ds,
        ModelKind::Gcn,
        config(
            4,
            CommMode::P2pRu,
            OverlapMode::Off,
            Mode::Train,
            Arc::new(CacheOff),
        ),
    );
    let (on_losses, on_logits, session) = train_two(
        &ds,
        ModelKind::Gcn,
        config(
            4,
            CommMode::P2pRu,
            OverlapMode::Off,
            Mode::Train,
            Arc::new(DegreeRanked),
        ),
    );
    assert_eq!(on_losses, off_losses);
    assert_eq!(on_logits, off_logits);
    let rt = session.cache().expect("cache runtime installed");
    assert!(rt.total_hits() > 0, "degree policy never hit");
    let report = session.certify_cache();
    assert!(report.is_ok(), "{}", report.render());
}

/// A feature delta must drop the cached copies of the patched rows
/// before the repair sweep: the journal records the invalidation, the
/// post-delta logits match the cache-off session's, and pass 11 (whose
/// H1003 exists for exactly this staleness) still certifies.
#[test]
fn delta_commit_invalidates_dirty_cached_rows() {
    let ds = dataset();
    let mk = |cache: Arc<dyn CachePolicy>| {
        Session::new(
            &ds,
            ModelKind::Gcn,
            16,
            2,
            4,
            config(4, CommMode::P2pRu, OverlapMode::Off, Mode::Infer, cache),
        )
        .expect("session")
    };
    let mut cached = mk(Arc::new(FrequencyRanked));
    let mut plain = mk(Arc::new(CacheOff));
    // Warm the cache with two full sweeps.
    for _ in 0..2 {
        cached.infer_epoch().expect("warm sweep");
        plain.infer_epoch().expect("plain sweep");
    }
    // Patch the features of a row that is resident right now.
    let victim = {
        let rt = cached.cache().expect("runtime");
        assert!(rt.resident_rows(0) > 0, "nothing resident after warmup");
        rt.plan().per_gpu[0].vertices[0]
    };
    let cols = ds.features.cols();
    let deltas = vec![Delta::UpdateFeatures {
        vertex: victim,
        features: vec![0.25; cols],
    }];
    let mut dg_cached = DynamicGraph::from_dataset(&ds);
    let mut dg_plain = DynamicGraph::from_dataset(&ds);
    let cached_logits = cached
        .apply_deltas(&mut dg_cached, &deltas)
        .expect("apply deltas")
        .logits;
    let plain_logits = plain
        .apply_deltas(&mut dg_plain, &deltas)
        .expect("apply deltas")
        .logits;
    assert_eq!(cached_logits, plain_logits, "post-delta logits diverged");
    let rt = cached.cache().expect("runtime survives a feature delta");
    let invalidated = rt.log().events.iter().any(|e| match e {
        hongtu::cache::CacheEvent::Invalidate { removed, .. } => {
            removed.iter().any(|per_gpu| per_gpu.contains(&victim))
        }
        _ => false,
    });
    assert!(
        invalidated,
        "no journaled invalidation dropped the victim row"
    );
    let report = cached.certify_cache();
    assert!(report.is_ok(), "{}", report.render());
    // The repair sweep reinstalls the (fresh) row; later sweeps may hit
    // it again — certified stale-free by the pass above.
    cached.infer_epoch().expect("post-delta sweep");
    let report = cached.certify_cache();
    assert!(report.is_ok(), "{}", report.render());
}

/// A clustered serving stream (repeated vertex-subset queries over one
/// chunk's destinations) hits the cache: the pruned sweeps keep
/// re-loading the same boundary rows, which is the workload the cache
/// exists for.
#[test]
fn clustered_serving_stream_hits_cache() {
    let ds = dataset();
    let mut session = Session::new(
        &ds,
        ModelKind::Gcn,
        16,
        2,
        4,
        config(
            4,
            CommMode::P2pRu,
            OverlapMode::Off,
            Mode::Infer,
            Arc::new(FrequencyRanked),
        ),
    )
    .expect("session");
    let pool: Vec<usize> = session
        .plans()
        .partition
        .all_chunks()
        .filter(|c| c.chunk == 0)
        .flat_map(|c| c.dests.iter().map(|&v| v as usize))
        .collect();
    let mut rng = SeededRng::new(7);
    for _ in 0..5 {
        let queries: Vec<usize> = rng
            .sample_indices(pool.len(), 8.min(pool.len()))
            .into_iter()
            .map(|k| pool[k])
            .collect();
        session.serve(&queries).expect("serve");
    }
    let rt = session.cache().expect("runtime");
    assert!(
        rt.total_hits() > 0,
        "clustered query stream never hit the cache"
    );
    let report = session.certify_cache();
    assert!(report.is_ok(), "{}", report.render());
}

/// Paranoid validation keeps certifying with the cache's install/hit
/// accesses in the trace — construction-time schedule synthesis and the
/// per-epoch re-checks both see `DevCache` resources now.
#[test]
fn paranoid_certifies_cache_on_epochs() {
    let ds = dataset();
    for comm in [CommMode::Vanilla, CommMode::P2p, CommMode::P2pRu] {
        let cfg = HongTuConfig::builder()
            .machine(MachineConfig::scaled(4, 512 << 20))
            .comm(comm)
            .reorganize(comm != CommMode::Vanilla)
            .overlap(OverlapMode::DoubleBuffer)
            .validation(ValidationLevel::Paranoid)
            .cache(Arc::new(FrequencyRanked))
            .build()
            .expect("valid config");
        let mut session = Session::new(&ds, ModelKind::Gcn, 16, 2, 4, cfg).expect("session");
        let mut trainer = session.trainer();
        for epoch in 0..2 {
            trainer
                .epoch()
                .unwrap_or_else(|e| panic!("{comm:?} epoch {epoch}: {e}"));
        }
    }
}

/// The `Plans` facade exposes every synthesized plan coherently: the
/// cache plan appears iff a policy is enabled, and the deprecated
/// getters still forward to the same objects.
#[test]
fn plans_facade_is_coherent() {
    let ds = dataset();
    let session = Session::new(
        &ds,
        ModelKind::Gcn,
        16,
        2,
        4,
        config(
            2,
            CommMode::P2pRu,
            OverlapMode::DoubleBuffer,
            Mode::Train,
            Arc::new(FrequencyRanked),
        ),
    )
    .expect("session");
    let plans = session.plans();
    assert_eq!(plans.partition.m, 2);
    assert_eq!(plans.dedup.n, plans.partition.n);
    assert!(plans.buffers.is_some(), "P2pRu builds buffer plans");
    let staging = plans.staging.expect("double buffering pins staging");
    assert_eq!(staging.len(), 2);
    let cache = plans.cache.expect("enabled policy admits a plan");
    assert!(cache.total_rows() > 0);
    assert_eq!(cache.per_gpu.len(), 2);
    #[allow(deprecated)]
    {
        assert!(std::ptr::eq(session.plan(), plans.partition));
        assert!(std::ptr::eq(session.dedup_plan(), plans.dedup));
        assert_eq!(
            session.staging_plans().map(|s| s.len()),
            plans.staging.map(|s| s.len())
        );
    }
}
