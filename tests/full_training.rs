//! End-to-end integration tests: the HongTu engine against the reference
//! full-graph trainer, across models, strategies, and communication modes.

use hongtu::core::{CommMode, HongTuConfig, HongTuEngine, MemoryStrategy};
use hongtu::datasets::{load, DatasetKey};
use hongtu::nn::model::whole_graph_chunk;
use hongtu::nn::{GnnModel, ModelKind};
use hongtu::sim::MachineConfig;
use hongtu::tensor::{Adam, SeededRng};

fn dataset() -> hongtu::datasets::Dataset {
    load(DatasetKey::Rdt, &mut SeededRng::new(77))
}

fn machine() -> MachineConfig {
    MachineConfig::scaled(4, 512 << 20)
}

/// The paper's core semantics claim (Figure 8): partitioned, offloaded,
/// deduplicated training computes the *same* function as single-device
/// full-graph training — for every model architecture.
#[test]
fn engine_matches_reference_for_every_model() {
    let ds = dataset();
    for kind in [
        ModelKind::Gcn,
        ModelKind::Gat,
        ModelKind::Sage,
        ModelKind::Gin,
    ] {
        let mut engine =
            HongTuEngine::new(&ds, kind, 16, 2, 3, HongTuConfig::full(machine())).unwrap();
        let mut rng = SeededRng::new(ds.seed ^ 0x686F6E67);
        let mut reference = GnnModel::new(kind, &ds.model_dims(16, 2), &mut rng);
        let chunk = whole_graph_chunk(&ds.graph);
        let mut opt = Adam::new(0.01);
        for epoch in 0..3 {
            let got = engine.train_epoch().unwrap().loss.loss;
            let want = reference
                .train_epoch_reference(&chunk, &ds.features, &ds.labels, &ds.splits.train, &mut opt)
                .loss;
            let tol = 5e-3 * want.abs().max(1.0);
            assert!(
                (got - want).abs() < tol,
                "{} epoch {epoch}: engine {got} vs reference {want}",
                kind.name()
            );
        }
    }
}

/// Every (comm mode × memory strategy) combination computes identical
/// training losses; they differ only in simulated cost.
#[test]
fn all_configurations_agree_numerically() {
    let ds = dataset();
    let mut losses = Vec::new();
    let mut times = Vec::new();
    for comm in [CommMode::Vanilla, CommMode::P2p, CommMode::P2pRu] {
        for memory in [MemoryStrategy::Recompute, MemoryStrategy::Hybrid] {
            let mut cfg = HongTuConfig::full(machine());
            cfg.comm = comm;
            cfg.memory = memory;
            cfg.reorganize = false; // identical plan across configurations
            let mut e = HongTuEngine::new(&ds, ModelKind::Gcn, 16, 2, 4, cfg).unwrap();
            let r = e.train_epoch().unwrap();
            losses.push(r.loss.loss);
            times.push(r.time);
        }
    }
    for l in &losses[1..] {
        assert_eq!(
            *l, losses[0],
            "losses diverged across configurations: {losses:?}"
        );
    }
    // Full dedup + hybrid must be the fastest configuration.
    let full = times[5];
    assert!(times.iter().all(|&t| t >= full * 0.999), "times {times:?}");
}

/// Multi-epoch training drives validation accuracy well above chance on
/// the community-labelled proxy.
#[test]
fn long_training_reaches_good_accuracy() {
    let ds = dataset();
    let mut e =
        HongTuEngine::new(&ds, ModelKind::Gcn, 32, 2, 4, HongTuConfig::full(machine())).unwrap();
    for _ in 0..40 {
        e.train_epoch().unwrap();
    }
    let val = e.accuracy(&ds.splits.val);
    assert!(val > 0.8, "validation accuracy {val} (chance = 0.125)");
}

/// Epoch timing is deterministic: the plan is fixed, so every epoch costs
/// exactly the same simulated time (this justifies Table 9's 100-epoch
/// extrapolation).
#[test]
fn epoch_time_is_deterministic() {
    let ds = dataset();
    let mut e =
        HongTuEngine::new(&ds, ModelKind::Gcn, 16, 2, 4, HongTuConfig::full(machine())).unwrap();
    let t1 = e.train_epoch().unwrap().time;
    let t2 = e.train_epoch().unwrap().time;
    let t3 = e.train_epoch().unwrap().time;
    assert!(
        (t1 - t2).abs() < 1e-12 && (t2 - t3).abs() < 1e-12,
        "{t1} {t2} {t3}"
    );
}

/// Two engines constructed identically produce bit-identical training.
#[test]
fn training_is_reproducible_across_engines() {
    let ds = dataset();
    let run = || {
        let mut e = HongTuEngine::new(
            &ds,
            ModelKind::Sage,
            16,
            2,
            3,
            HongTuConfig::full(machine()),
        )
        .unwrap();
        (0..4)
            .map(|_| e.train_epoch().unwrap().loss.loss)
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}
