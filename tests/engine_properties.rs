//! Property-style integration tests: the HongTu engine against the
//! reference full-graph trainer on *randomly generated* datasets — graphs,
//! features, splits, model shapes, chunkings all drawn from a seed.

use hongtu::core::{HongTuConfig, HongTuEngine};
use hongtu::datasets::dataset::{with_self_loops, Dataset, DatasetKey, Splits};
use hongtu::graph::generators;
use hongtu::nn::model::whole_graph_chunk;
use hongtu::nn::{GnnModel, ModelKind};
use hongtu::sim::MachineConfig;
use hongtu::tensor::{Adam, Matrix, SeededRng};
use proptest::prelude::*;

/// An ad-hoc random dataset (not from the registry).
fn random_dataset(seed: u64, n: usize, deg: f64, classes: usize) -> Dataset {
    let mut rng = SeededRng::new(seed);
    let g = generators::erdos_renyi(n, deg, &mut rng.fork(1));
    let graph = with_self_loops(&g);
    let feat_dim = 4 + rng.index(6);
    let mut frng = rng.fork(2);
    let features = Matrix::from_fn(n, feat_dim, |_, _| frng.normal() * 0.5);
    let mut lrng = rng.fork(3);
    let labels: Vec<u32> = (0..n).map(|_| lrng.index(classes) as u32).collect();
    let splits = Splits::random(n, 0.4, 0.2, &mut rng.fork(4));
    Dataset {
        key: DatasetKey::Rdt,
        graph,
        features,
        labels,
        splits,
        num_classes: classes,
        seed,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For random datasets, shapes, and chunkings, three epochs of HongTu
    /// training match the reference full-graph trainer loss-for-loss.
    #[test]
    fn engine_equals_reference_on_random_datasets(
        seed in 0u64..500,
        n in 120usize..400,
        deg in 3.0f64..8.0,
        hidden in 4usize..12,
        chunks in 1usize..5,
        kind_sel in 0usize..6,
    ) {
        let kind = [
            ModelKind::Gcn,
            ModelKind::Gat,
            ModelKind::Sage,
            ModelKind::Gin,
            ModelKind::CommNet,
            ModelKind::Ggnn,
        ][kind_sel];
        let ds = random_dataset(seed, n, deg, 4);
        let machine = MachineConfig::scaled(4, 512 << 20);
        let mut engine = HongTuEngine::new(&ds, kind, hidden, 2, chunks, HongTuConfig::full(machine))
            .expect("engine");
        let mut rng = SeededRng::new(ds.seed ^ 0x686F6E67);
        let mut reference = GnnModel::new(kind, &ds.model_dims(hidden, 2), &mut rng);
        let chunk = whole_graph_chunk(&ds.graph);
        let mut opt = Adam::new(0.01);
        for epoch in 0..3 {
            let got = engine.train_epoch().expect("epoch").loss.loss;
            let want = reference
                .train_epoch_reference(&chunk, &ds.features, &ds.labels, &ds.splits.train, &mut opt)
                .loss;
            let tol = 1e-2 * want.abs().max(1.0);
            prop_assert!(
                (got - want).abs() < tol,
                "{} seed {seed} epoch {epoch}: engine {got} vs reference {want}",
                kind.name()
            );
        }
    }

    /// Peak GPU memory never exceeds the budget the engine accepted, for
    /// any random configuration that constructs successfully.
    #[test]
    fn peak_memory_within_budget(
        seed in 0u64..500,
        n in 150usize..400,
        chunks in 1usize..6,
    ) {
        let ds = random_dataset(seed, n, 5.0, 3);
        let budget = 64 << 20;
        let machine = MachineConfig::scaled(4, budget);
        if let Ok(mut e) =
            HongTuEngine::new(&ds, ModelKind::Gcn, 8, 2, chunks, HongTuConfig::full(machine))
        {
            if e.train_epoch().is_ok() {
                prop_assert!(e.machine().max_gpu_peak() <= budget);
            }
        }
    }
}

/// The engine refuses a corrupted plan at construction: the verifier runs
/// under the default `ValidationLevel::Plan` and surfaces the diagnostic
/// code instead of silently training on wrong data.
#[test]
fn corrupted_plan_is_rejected_with_diagnostic_code() {
    use hongtu::partition::TwoLevelPartition;
    use hongtu::sim::SimError;

    let ds = random_dataset(55, 250, 5.0, 3);
    let machine = MachineConfig::scaled(2, 256 << 20);
    let mut plan = TwoLevelPartition::build(&ds.graph, 2, 2, ds.seed);
    // Drop one destination vertex: a coverage gap (P002) — that vertex
    // would simply never be aggregated, with no crash.
    let dests = {
        let mut d = plan.chunks[0][0].dests.clone();
        d.remove(d.len() / 2);
        d
    };
    plan.chunks[0][0] = hongtu::partition::subgraph::ChunkSubgraph::build(&ds.graph, 0, 0, dests);

    let mut config = HongTuConfig::full(machine);
    config.reorganize = false; // keep the corruption byte-identical
    let err = match HongTuEngine::with_plan(&ds, ModelKind::Gcn, 8, 2, plan, config) {
        Err(e) => e,
        Ok(_) => panic!("corrupted plan must be rejected"),
    };
    match err {
        SimError::InvalidPlan { code, message } => {
            assert_eq!(code, "P002", "{message}");
            assert!(message.contains("owned by no chunk"), "{message}");
        }
        other => panic!("expected InvalidPlan, got {other:?}"),
    }
}

/// `Paranoid` keeps the buffer plans alive and re-verifies them each
/// epoch (in debug builds); a healthy engine must train unaffected.
#[test]
fn paranoid_validation_trains_normally() {
    use hongtu::core::ValidationLevel;

    let ds = random_dataset(66, 200, 5.0, 3);
    let machine = MachineConfig::scaled(2, 256 << 20);
    let mut config = HongTuConfig::full(machine);
    config.validation = ValidationLevel::Paranoid;
    let mut engine = HongTuEngine::new(&ds, ModelKind::Gcn, 8, 2, 3, config).expect("engine");
    for _ in 0..2 {
        engine.train_epoch().expect("paranoid epoch");
    }
}

/// Saved models round-trip through the checkpoint format and keep the
/// engine-trained accuracy.
#[test]
fn trained_model_checkpoint_roundtrip() {
    let ds = random_dataset(77, 200, 5.0, 3);
    let machine = MachineConfig::scaled(4, 256 << 20);
    let mut engine =
        HongTuEngine::new(&ds, ModelKind::Gcn, 8, 2, 2, HongTuConfig::full(machine)).unwrap();
    for _ in 0..5 {
        engine.train_epoch().unwrap();
    }
    let mut buf = Vec::new();
    hongtu::nn::save_model(engine.model(), &mut buf).unwrap();
    let restored = hongtu::nn::load_model(buf.as_slice()).unwrap();
    let chunk = whole_graph_chunk(&ds.graph);
    let logits_trained = engine
        .model()
        .forward_reference(&chunk, &ds.features)
        .pop()
        .unwrap();
    let logits_restored = restored
        .forward_reference(&chunk, &ds.features)
        .pop()
        .unwrap();
    assert_eq!(logits_trained, logits_restored);
}
