//! Certification of the parallel epoch executor: the per-GPU worker-thread
//! schedule must be *bitwise* equivalent to the sequential executor —
//! identical losses, accuracies, simulated clocks, and time buckets — and
//! its execution traces must certify race-free under the happens-before
//! checker, for every model × comm mode × GPU count.
//!
//! The RNG seed is `HONGTU_TEST_SEED` when set (the CI matrix runs two
//! seeds), 99 otherwise; the worker pool size is `HONGTU_THREADS` (the CI
//! matrix runs 1, 2, and 8), so these same assertions certify the executor
//! at every pool size including the degenerate single-thread one. Setting
//! `HONGTU_TEST_OVERLAP=doublebuffer` (the CI matrix's overlap dimension)
//! re-runs the whole suite under the double-buffered overlap executor.

use hongtu::core::{
    CommMode, ExecutionMode, HongTuConfig, HongTuEngine, MemoryStrategy, OverlapMode,
};
use hongtu::datasets::dataset::{with_self_loops, Dataset, DatasetKey, Splits};
use hongtu::datasets::load;
use hongtu::graph::generators;
use hongtu::nn::ModelKind;
use hongtu::sim::{MachineConfig, Trace};
use hongtu::tensor::{Matrix, SeededRng};
use hongtu::verify::{verify_determinism, verify_trace};
use proptest::prelude::*;

fn test_seed() -> u64 {
    std::env::var("HONGTU_TEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(99)
}

fn dataset() -> Dataset {
    load(DatasetKey::Rdt, &mut SeededRng::new(test_seed()))
}

fn test_overlap() -> OverlapMode {
    match std::env::var("HONGTU_TEST_OVERLAP").as_deref() {
        Ok("doublebuffer") | Ok("db") => OverlapMode::DoubleBuffer,
        _ => OverlapMode::Off,
    }
}

fn config(
    gpus: usize,
    comm: CommMode,
    memory: MemoryStrategy,
    exec: ExecutionMode,
) -> HongTuConfig {
    let mut cfg = HongTuConfig::full(MachineConfig::scaled(gpus, 512 << 20));
    cfg.comm = comm;
    cfg.memory = memory;
    cfg.reorganize = comm != CommMode::Vanilla;
    cfg.exec = exec;
    cfg.overlap = test_overlap();
    cfg
}

/// Per-epoch observables that must match bitwise across executors.
#[derive(Debug, PartialEq)]
struct EpochFacts {
    loss: f32,
    accuracy: f32,
    time: f64,
    val: f32,
    test: f32,
    peak: usize,
}

fn run_epochs(ds: &Dataset, kind: ModelKind, cfg: HongTuConfig, epochs: usize) -> Vec<EpochFacts> {
    let mut engine = HongTuEngine::new(ds, kind, 16, 2, 4, cfg).expect("engine");
    (0..epochs)
        .map(|_| {
            let r = engine.train_epoch().expect("epoch");
            EpochFacts {
                loss: r.loss.loss,
                accuracy: r.loss.accuracy,
                time: r.time,
                val: engine.accuracy(&ds.splits.val),
                test: engine.accuracy(&ds.splits.test),
                peak: engine.machine().max_gpu_peak(),
            }
        })
        .collect()
}

/// The headline determinism contract: for every model × comm mode × GPU
/// count, the parallel executor's losses, accuracies, simulated epoch
/// times, and peak memory are bitwise identical to the sequential
/// executor's (f64 equality, no tolerance).
#[test]
fn parallel_matches_sequential_bitwise() {
    let ds = dataset();
    for kind in [ModelKind::Gcn, ModelKind::Gat, ModelKind::Sage] {
        for comm in [CommMode::Vanilla, CommMode::P2p, CommMode::P2pRu] {
            for gpus in [1, 2, 4] {
                let seq = run_epochs(
                    &ds,
                    kind,
                    config(
                        gpus,
                        comm,
                        MemoryStrategy::Recompute,
                        ExecutionMode::Sequential,
                    ),
                    2,
                );
                let par = run_epochs(
                    &ds,
                    kind,
                    config(
                        gpus,
                        comm,
                        MemoryStrategy::Recompute,
                        ExecutionMode::Parallel,
                    ),
                    2,
                );
                assert_eq!(
                    seq,
                    par,
                    "{} / {comm:?} / {gpus} GPUs: parallel diverged from sequential",
                    kind.name()
                );
            }
        }
    }
}

/// Same contract for the hybrid memory strategy (cached-aggregate
/// backward path: no serves, leader-applied checkpoint stores).
#[test]
fn parallel_matches_sequential_bitwise_hybrid() {
    let ds = dataset();
    for kind in [ModelKind::Gcn, ModelKind::Sage] {
        let seq = run_epochs(
            &ds,
            kind,
            config(
                4,
                CommMode::P2pRu,
                MemoryStrategy::Hybrid,
                ExecutionMode::Sequential,
            ),
            2,
        );
        let par = run_epochs(
            &ds,
            kind,
            config(
                4,
                CommMode::P2pRu,
                MemoryStrategy::Hybrid,
                ExecutionMode::Parallel,
            ),
            2,
        );
        assert_eq!(seq, par, "{} hybrid: parallel diverged", kind.name());
    }
}

fn traced_epoch(ds: &Dataset, exec: ExecutionMode) -> Trace {
    let cfg = config(4, CommMode::P2pRu, MemoryStrategy::Recompute, exec);
    let mut engine = HongTuEngine::new(ds, ModelKind::Gcn, 16, 2, 4, cfg).expect("engine");
    engine.machine_mut().enable_unbounded_trace();
    engine.train_epoch().expect("epoch");
    engine.machine().trace().clone()
}

/// The parallel executor's event trace certifies clean under the
/// happens-before checker and is *equivalent* to the sequential trace —
/// the worker-thread schedule is a commutable reordering of the reference
/// (here it is in fact identical: shards join in GPU index order).
#[test]
fn parallel_trace_certified_race_free_and_equivalent() {
    let ds = dataset();
    let par = traced_epoch(&ds, ExecutionMode::Parallel);
    let report = verify_trace(&par);
    assert!(
        report.is_ok(),
        "parallel schedule not certified:\n{}",
        report.render()
    );

    let seq = traced_epoch(&ds, ExecutionMode::Sequential);
    assert_eq!(seq.len(), par.len(), "trace length diverged");
    let report = verify_determinism(&seq, &par);
    assert!(
        report.is_ok(),
        "parallel schedule not equivalent to sequential:\n{}",
        report.render()
    );
}

/// An ad-hoc random dataset (not from the registry).
fn random_dataset(seed: u64, n: usize, deg: f64, classes: usize) -> Dataset {
    let mut rng = SeededRng::new(seed);
    let g = generators::erdos_renyi(n, deg, &mut rng.fork(1));
    let graph = with_self_loops(&g);
    let feat_dim = 4 + rng.index(6);
    let mut frng = rng.fork(2);
    let features = Matrix::from_fn(n, feat_dim, |_, _| frng.normal() * 0.5);
    let mut lrng = rng.fork(3);
    let labels: Vec<u32> = (0..n).map(|_| lrng.index(classes) as u32).collect();
    let splits = Splits::random(n, 0.4, 0.2, &mut rng.fork(4));
    Dataset {
        key: DatasetKey::Rdt,
        graph,
        features,
        labels,
        splits,
        num_classes: classes,
        seed,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Paranoid-mode property: on random datasets, chunkings, and comm
    /// modes, every epoch of the *parallel* executor is schedule-certified
    /// by the in-engine happens-before re-check (`train_epoch` fails with
    /// `InvalidSchedule` on any race), and its losses still match the
    /// sequential executor bitwise.
    #[test]
    fn paranoid_certifies_parallel_epochs_on_random_datasets(
        seed in 0u64..500,
        n in 120usize..300,
        deg in 3.0f64..7.0,
        chunks in 1usize..5,
        comm_sel in 0usize..3,
        gpus_sel in 0usize..3,
    ) {
        let comm = [CommMode::Vanilla, CommMode::P2p, CommMode::P2pRu][comm_sel];
        let gpus = [1, 2, 4][gpus_sel];
        let ds = random_dataset(seed, n, deg, 4);
        let mut cfg = config(gpus, comm, MemoryStrategy::Recompute, ExecutionMode::Parallel);
        cfg.validation = hongtu::core::ValidationLevel::Paranoid;
        let mut par = HongTuEngine::new(&ds, ModelKind::Gcn, 8, 2, chunks, cfg)
            .expect("parallel engine");

        let seq_cfg = config(gpus, comm, MemoryStrategy::Recompute, ExecutionMode::Sequential);
        let mut seq = HongTuEngine::new(&ds, ModelKind::Gcn, 8, 2, chunks, seq_cfg)
            .expect("sequential engine");

        for epoch in 0..2 {
            let p = par.train_epoch().expect("parallel epoch certifies race-free");
            let s = seq.train_epoch().expect("sequential epoch");
            prop_assert_eq!(
                p.loss.loss, s.loss.loss,
                "epoch {} loss diverged", epoch
            );
            prop_assert_eq!(p.time, s.time, "epoch {} time diverged", epoch);
        }
    }
}
