//! Certification of the serving path: `Session::serve` must return
//! logits bitwise identical to a full `infer_epoch` restricted to the
//! queried vertices across the full {model × gpus × overlap} matrix,
//! the ≤ L-hop cone mask must cover a brute-force BFS oracle on random
//! graphs, every batch admitted against the session's own staging
//! budget must run within the static memory bound, and a served batch's
//! synthesized schedule must certify clean under the static passes —
//! including Paranoid, which re-certifies inside `serve` itself.
//!
//! The bitwise comparison works because the serve session and the
//! reference inference session are seeded identically by the dataset:
//! two fresh sessions hold the same initial weights, and the pruned
//! sweep computes exactly the same floating-point operations for the
//! rows it keeps.

use hongtu::core::{
    CommMode, HongTuConfig, Mode, OverlapMode, ServeMask, Session, ValidationLevel,
};
use hongtu::datasets::dataset::{with_self_loops, Dataset, DatasetKey, Splits};
use hongtu::datasets::load;
use hongtu::graph::generators;
use hongtu::nn::ModelKind;
use hongtu::partition::TwoLevelPartition;
use hongtu::serving::AdmissionControl;
use hongtu::sim::MachineConfig;
use hongtu::tensor::{Matrix, SeededRng};
use hongtu::verify::DEFAULT_EXPLORE_BUDGET;
use proptest::prelude::*;

fn test_seed() -> u64 {
    std::env::var("HONGTU_TEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(99)
}

fn dataset() -> Dataset {
    load(DatasetKey::Rdt, &mut SeededRng::new(test_seed()))
}

fn config(gpus: usize, overlap: OverlapMode) -> HongTuConfig {
    HongTuConfig::builder()
        .machine(MachineConfig::scaled(gpus, 512 << 20))
        .comm(CommMode::P2pRu)
        .reorganize(true)
        .overlap(overlap)
        .mode(Mode::Infer)
        .build()
        .expect("valid config")
}

fn session(ds: &Dataset, kind: ModelKind, gpus: usize, overlap: OverlapMode) -> Session {
    Session::new(ds, kind, 16, 2, 4, config(gpus, overlap)).expect("session")
}

/// A query subset clustered in batch 0 (the regime where the cone
/// actually prunes) plus a couple of scattered vertices.
fn mixed_queries(session: &Session, count: usize, seed: u64) -> Vec<usize> {
    let mut pool: Vec<usize> = session
        .plans()
        .partition
        .all_chunks()
        .filter(|c| c.chunk == 0)
        .flat_map(|c| c.dests.iter().map(|&v| v as usize))
        .collect();
    pool.sort_unstable();
    let mut rng = SeededRng::new(seed);
    let mut q: Vec<usize> = rng
        .sample_indices(pool.len(), count.min(pool.len()))
        .into_iter()
        .map(|k| pool[k])
        .collect();
    q.push(0);
    q.dedup();
    q
}

/// Served logits are bitwise equal to `infer_epoch` restricted to the
/// queried rows, across every model, GPU count and overlap mode. The
/// serve runs first on its own fresh session so nothing about the full
/// sweep can leak into the pruned one.
#[test]
fn served_logits_match_infer_epoch_across_matrix() {
    let ds = dataset();
    for kind in [ModelKind::Gcn, ModelKind::Gat, ModelKind::Sage] {
        for gpus in [1usize, 2, 4] {
            for overlap in [OverlapMode::Off, OverlapMode::DoubleBuffer] {
                let (served, vertices) = {
                    let mut s = session(&ds, kind, gpus, overlap);
                    let vertices = mixed_queries(&s, 24, test_seed());
                    let report = s.serve(&vertices).expect("serve");
                    assert_eq!(report.logits.rows(), vertices.len());
                    assert!(report.active_steps <= report.total_steps);
                    (report.logits, vertices)
                };
                let full = {
                    let mut s = session(&ds, kind, gpus, overlap);
                    s.infer_epoch().expect("infer epoch").logits
                };
                assert_eq!(
                    served,
                    full.gather_rows(&vertices),
                    "{} / {gpus} GPUs / {overlap:?}: served logits diverged from infer_epoch",
                    kind.name()
                );
            }
        }
    }
}

/// The chunk-granular cone mask covers the exact vertex-level ≤ L-hop
/// dependency ball: at the step computing `h^{l+1}`, every vertex whose
/// row the queries transitively need (BFS over in-edges from the query
/// set, one hop per layer above `l`) must live in an active batch. The
/// mask may be larger (batch granularity), never smaller.
#[test]
fn cone_mask_covers_bfs_oracle_on_random_graphs() {
    for seed in [3u64, 17, 42] {
        let mut rng = SeededRng::new(seed);
        let g = generators::erdos_renyi(160 + rng.index(120), 4.0, &mut rng.fork(1));
        let n = g.num_vertices();
        for (m, chunks) in [(1usize, 4usize), (2, 4), (4, 2)] {
            let plan = TwoLevelPartition::build(&g, m, chunks, seed);
            let mut batch_of = vec![0usize; n];
            for c in plan.all_chunks() {
                for &v in &c.dests {
                    batch_of[v as usize] = c.chunk;
                }
            }
            for layers in [1usize, 2, 3] {
                let mut qrng = rng.fork(100 + layers as u64);
                let count = 1 + qrng.index(4);
                let queries = qrng.sample_indices(n, count);
                let mask = ServeMask::from_queries(&plan, layers, &queries);
                assert_eq!(mask.layers(), layers);

                let mut ball = vec![false; n];
                for &q in &queries {
                    ball[q] = true;
                }
                for l in (0..layers).rev() {
                    for v in 0..n {
                        if ball[v] {
                            assert!(
                                mask.active(l, batch_of[v]),
                                "seed {seed}, {m}x{chunks}, L={layers}: vertex {v} needed at \
                                 layer {l} but batch {} inactive",
                                batch_of[v]
                            );
                        }
                    }
                    let snapshot: Vec<usize> = (0..n).filter(|&v| ball[v]).collect();
                    for v in snapshot {
                        for &u in g.in_neighbors(v as u32) {
                            ball[u as usize] = true;
                        }
                    }
                }
                // Downward closure: a batch active at layer l+1 is
                // active at layer l.
                for l in 0..layers.saturating_sub(1) {
                    for j in 0..mask.batches() {
                        assert!(!mask.active(l + 1, j) || mask.active(l, j));
                    }
                }
            }
        }
    }
}

/// A served batch's synthesized schedule certifies clean under the
/// static passes (6–8 with exhaustive interleaving exploration on the
/// ≤ 2 GPU × 2 layer session, plus pass-9 dataflow conservation), and
/// Paranoid validation re-certifies inside `serve` itself.
#[test]
fn served_batch_schedule_certifies_with_paranoid() {
    let ds = dataset();
    let cfg = HongTuConfig::builder()
        .machine(MachineConfig::scaled(2, 512 << 20))
        .comm(CommMode::P2pRu)
        .reorganize(true)
        .overlap(OverlapMode::DoubleBuffer)
        .validation(ValidationLevel::Paranoid)
        .infer()
        .build()
        .expect("valid config");
    let mut session = Session::new(&ds, ModelKind::Gcn, 16, 2, 4, cfg).expect("session");
    let vertices = mixed_queries(&session, 16, test_seed());

    assert!(session.exhaustive_exploration_feasible());
    let report = session
        .certify_serve(&vertices, Some(DEFAULT_EXPLORE_BUDGET))
        .expect("schedule synthesis");
    assert!(report.is_ok(), "{}", report.render());

    // Paranoid re-runs schedule + dataflow certification inside the
    // epoch wrapper; a clean return IS the certificate.
    let served = session.serve(&vertices).expect("serve under Paranoid");
    assert_eq!(served.logits.rows(), vertices.len());
}

/// A sweep pruned to a clustered query set executes strictly fewer sim
/// events than the full inference sweep on an identical session.
#[test]
fn pruned_sweep_runs_strictly_fewer_events() {
    let ds = dataset();
    for overlap in [OverlapMode::Off, OverlapMode::DoubleBuffer] {
        let serve_events = {
            let mut s = session(&ds, ModelKind::Gcn, 4, overlap);
            let vertices = mixed_queries(&s, 16, test_seed());
            s.machine_mut().enable_unbounded_trace();
            let report = s.serve(&vertices).expect("serve");
            assert!(report.active_steps < report.total_steps);
            s.machine().trace().len()
        };
        let infer_events = {
            let mut s = session(&ds, ModelKind::Gcn, 4, overlap);
            s.machine_mut().enable_unbounded_trace();
            s.infer_epoch().expect("infer epoch");
            s.machine().trace().len()
        };
        assert!(
            serve_events < infer_events,
            "{overlap:?}: pruned sweep {serve_events} events !< full sweep {infer_events}"
        );
    }
}

/// An ad-hoc random dataset (not from the registry).
fn random_dataset(seed: u64, n: usize) -> Dataset {
    let rng = SeededRng::new(seed);
    let g = generators::erdos_renyi(n, 5.0, &mut rng.fork(1));
    let graph = with_self_loops(&g);
    let mut frng = rng.fork(2);
    let features = Matrix::from_fn(n, 6, |_, _| frng.normal() * 0.5);
    let mut lrng = rng.fork(3);
    let labels: Vec<u32> = (0..n).map(|_| lrng.index(3) as u32).collect();
    let splits = Splits::random(n, 0.4, 0.2, &mut rng.fork(4));
    Dataset {
        key: DatasetKey::Rdt,
        graph,
        features,
        labels,
        splits,
        num_classes: 3,
        seed,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any batch admitted against the session's own staging budget runs
    /// within the static memory bound: the cone cost the admission
    /// check uses is the same per-batch arithmetic the bound charges,
    /// so admission can never let an over-budget sweep through.
    #[test]
    fn admitted_batches_fit_static_memory_bound(
        seed in 0u64..200,
        n in 140usize..320,
        chunks in 2usize..5,
        queries in 1usize..12,
        overlap_sel in 0usize..2,
    ) {
        let overlap = [OverlapMode::Off, OverlapMode::DoubleBuffer][overlap_sel];
        let ds = random_dataset(seed, n);
        let cfg = HongTuConfig::builder()
            .machine(MachineConfig::scaled(2, 512 << 20))
            .comm(CommMode::P2pRu)
            .reorganize(true)
            .overlap(overlap)
            .infer()
            .build()
            .expect("valid config");
        let mut session = Session::new(&ds, ModelKind::Gcn, 8, 2, chunks, cfg).expect("session");
        let vertices = SeededRng::new(seed ^ 0xabcd).sample_indices(n, queries);
        let mask = ServeMask::from_queries(session.plans().partition, 2, &vertices);

        // The cone is a subset of the full sweep the staging slots were
        // sized for, so the session's own budget always admits it.
        let admission = AdmissionControl::from_session(&session);
        prop_assert!(admission.admits(&session, &mask));
        for (cost, budget) in session.serve_cone_cost(&mask).iter().zip(admission.budget()) {
            prop_assert!(cost <= budget);
        }

        let bound = session.static_memory_bound();
        let report = session.serve(&vertices).expect("serve");
        let worst = bound.gpu.iter().copied().max().unwrap_or(0);
        prop_assert!(
            report.peak_gpu_bytes <= worst,
            "measured GPU peak {} exceeds static bound {}",
            report.peak_gpu_bytes,
            worst
        );
        prop_assert_eq!(report.logits.rows(), vertices.len());
    }
}
