//! Static schedule certification, end to end: the symbolic synthesizer
//! must emit event-for-event the schedule the executor then records
//! (the anti-drift equivalence gate), the synthesized schedule must
//! certify clean under passes 6–8 for every supported configuration,
//! and the static peak-memory bound must dominate the simulator's
//! measured peaks.

use hongtu::core::{CommMode, HongTuConfig, HongTuEngine, MemoryStrategy, Mode, OverlapMode};
use hongtu::datasets::dataset::{with_self_loops, Dataset, DatasetKey, Splits};
use hongtu::graph::generators;
use hongtu::nn::ModelKind;
use hongtu::sim::MachineConfig;
use hongtu::tensor::{Matrix, SeededRng};
use hongtu::verify::DEFAULT_EXPLORE_BUDGET;

const KINDS: [ModelKind; 3] = [ModelKind::Gcn, ModelKind::Gat, ModelKind::Sage];
const COMMS: [CommMode; 3] = [CommMode::Vanilla, CommMode::P2p, CommMode::P2pRu];
const GPUS: [usize; 3] = [1, 2, 4];

/// An ad-hoc random dataset (not from the registry).
fn random_dataset(seed: u64, n: usize) -> Dataset {
    let rng = SeededRng::new(seed);
    let g = generators::erdos_renyi(n, 5.0, &mut rng.fork(1));
    let graph = with_self_loops(&g);
    let mut frng = rng.fork(2);
    let features = Matrix::from_fn(n, 6, |_, _| frng.normal() * 0.5);
    let mut lrng = rng.fork(3);
    let labels: Vec<u32> = (0..n).map(|_| lrng.index(3) as u32).collect();
    let splits = Splits::random(n, 0.4, 0.2, &mut rng.fork(4));
    Dataset {
        key: DatasetKey::Rdt,
        graph,
        features,
        labels,
        splits,
        num_classes: 3,
        seed,
    }
}

fn engine_for(
    ds: &Dataset,
    kind: ModelKind,
    gpus: usize,
    comm: CommMode,
    overlap: OverlapMode,
    memory: MemoryStrategy,
    mode: Mode,
) -> HongTuEngine {
    let machine = MachineConfig::scaled(gpus, 512 << 20);
    let mut config = HongTuConfig::full(machine);
    config.comm = comm;
    config.overlap = overlap;
    config.memory = memory;
    config.mode = mode;
    config.reorganize = comm != CommMode::Vanilla;
    HongTuEngine::new(ds, kind, 8, 2, 4, config).expect("engine")
}

/// The full gate for one configuration: static certification (with
/// exhaustive interleavings where feasible), synthesized-vs-executed
/// event-for-event equivalence, and static-bound-dominates-peak.
fn check_config(
    ds: &Dataset,
    kind: ModelKind,
    gpus: usize,
    comm: CommMode,
    overlap: OverlapMode,
    memory: MemoryStrategy,
    mode: Mode,
) {
    let label = format!(
        "{} {comm:?} {gpus}g {overlap:?} {memory:?} {mode:?}",
        kind.name()
    );
    let mut engine = engine_for(ds, kind, gpus, comm, overlap, memory, mode);

    // Pass 6–8 certification of the synthesized schedule.
    let explore = engine
        .session()
        .exhaustive_exploration_feasible()
        .then_some(DEFAULT_EXPLORE_BUDGET);
    let report = engine
        .session()
        .certify_schedule(explore)
        .expect("schedule synthesis");
    assert!(report.is_ok(), "{label}: {}", report.render());

    // Synthesize *before* executing: both start from the same machine
    // clock, so the traces must agree on timestamps too.
    let bound = engine.session().static_memory_bound();
    let synth = engine
        .session()
        .synthesize_schedule()
        .expect("schedule synthesis");
    engine.machine_mut().enable_unbounded_trace();
    match mode {
        Mode::Train => engine.train_epoch().map(|_| ()).expect("epoch"),
        Mode::Infer => engine.infer_epoch().map(|_| ()).expect("epoch"),
    }
    let real = engine.machine().trace().clone();

    assert!(
        !synth.is_empty(),
        "{label}: synthesis produced an empty schedule"
    );
    assert_eq!(
        synth.len(),
        real.len(),
        "{label}: synthesized {} events, executor recorded {}",
        synth.len(),
        real.len()
    );
    for (idx, (s, r)) in synth.events().zip(real.events()).enumerate() {
        assert_eq!(s, r, "{label}: schedules diverge at event {idx}");
    }

    // The static bound must dominate what the simulator measured.
    for i in 0..gpus {
        let peak = engine.machine().gpu_memory(i).peak();
        assert!(
            peak <= bound.gpu[i],
            "{label}: gpu{i} measured peak {peak} exceeds static bound {}",
            bound.gpu[i]
        );
    }
    let host_peak = engine.machine().host_memory().peak();
    assert!(
        host_peak <= bound.host,
        "{label}: host measured peak {host_peak} exceeds static bound {}",
        bound.host
    );
}

/// {GCN,GAT,SAGE} × {vanilla,p2p,p2pru} × {1,2,4} GPUs, phased executor.
#[test]
fn matrix_certifies_and_matches_phased() {
    let ds = random_dataset(7, 220);
    for kind in KINDS {
        for comm in COMMS {
            for gpus in GPUS {
                check_config(
                    &ds,
                    kind,
                    gpus,
                    comm,
                    OverlapMode::Off,
                    MemoryStrategy::Hybrid,
                    Mode::Train,
                );
            }
        }
    }
}

/// Same matrix under the double-buffered overlap executor (the staging
/// slots exercise the L6xx lifecycle for real).
#[test]
fn matrix_certifies_and_matches_doublebuffer() {
    let ds = random_dataset(7, 220);
    for kind in KINDS {
        for comm in COMMS {
            for gpus in GPUS {
                check_config(
                    &ds,
                    kind,
                    gpus,
                    comm,
                    OverlapMode::DoubleBuffer,
                    MemoryStrategy::Hybrid,
                    Mode::Train,
                );
            }
        }
    }
}

/// Recompute checkpointing changes the backward schedule shape — gate a
/// diagonal of the matrix under it too.
#[test]
fn recompute_configs_certify_and_match() {
    let ds = random_dataset(11, 220);
    for (kind, comm, gpus, overlap) in [
        (
            ModelKind::Gcn,
            CommMode::P2pRu,
            2,
            OverlapMode::DoubleBuffer,
        ),
        (ModelKind::Sage, CommMode::P2p, 4, OverlapMode::Off),
        (
            ModelKind::Gat,
            CommMode::Vanilla,
            1,
            OverlapMode::DoubleBuffer,
        ),
    ] {
        check_config(
            &ds,
            kind,
            gpus,
            comm,
            overlap,
            MemoryStrategy::Recompute,
            Mode::Train,
        );
    }
}

/// Forward-only inference sessions synthesize and certify too.
#[test]
fn inference_configs_certify_and_match() {
    let ds = random_dataset(19, 220);
    for (comm, gpus, overlap) in [
        (CommMode::P2pRu, 2, OverlapMode::DoubleBuffer),
        (CommMode::Vanilla, 4, OverlapMode::Off),
        (CommMode::P2p, 1, OverlapMode::DoubleBuffer),
    ] {
        check_config(
            &ds,
            ModelKind::Gcn,
            gpus,
            comm,
            overlap,
            MemoryStrategy::Hybrid,
            Mode::Infer,
        );
    }
}

/// Synthesis must not perturb the session: a synthesized epoch and the
/// real epoch after it agree, and a *second* synthesis after training
/// matches the *second* epoch (clocks advanced, schedules re-aligned).
#[test]
fn synthesis_is_non_perturbing_across_epochs() {
    let ds = random_dataset(23, 220);
    let mut engine = engine_for(
        &ds,
        ModelKind::Gcn,
        2,
        CommMode::P2pRu,
        OverlapMode::DoubleBuffer,
        MemoryStrategy::Hybrid,
        Mode::Train,
    );
    let first = engine.session().synthesize_schedule().expect("synthesis");
    engine.machine_mut().enable_unbounded_trace();
    engine.train_epoch().expect("epoch 1");
    let real1 = engine
        .machine_mut()
        .replace_trace(hongtu::sim::Trace::unbounded());
    assert_eq!(first.len(), real1.len());

    let second = engine.session().synthesize_schedule().expect("synthesis");
    engine.train_epoch().expect("epoch 2");
    let real2 = engine.machine().trace().clone();
    assert_eq!(second.len(), real2.len());
    for (idx, (s, r)) in second.events().zip(real2.events()).enumerate() {
        assert_eq!(s, r, "epoch 2 diverges at event {idx}");
    }
}
