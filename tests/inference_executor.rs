//! Certification of the forward-only inference executor behind the
//! Session/Trainer/Inferencer API split: `infer_epoch` must produce
//! logits bitwise identical to the forward half of `train_epoch` across
//! the full {model × comm × gpus × exec × overlap} matrix, run with a
//! strictly smaller memory footprint than training (no optimizer state,
//! no gradient host stores, no checkpoint cache), and its schedules must
//! certify race-free under the happens-before checker — including under
//! `Paranoid`, which re-certifies inside `infer_epoch` itself.
//!
//! The bitwise comparison works because `train_epoch` computes its loss
//! (and therefore its logits, `h^L`) from the *pre-update* weights: one
//! training epoch on a fresh engine leaves `logits()` equal to a pure
//! forward pass over the seed-initialized model, which is exactly what a
//! fresh inference session computes.
//!
//! The RNG seed is `HONGTU_TEST_SEED` when set, 99 otherwise; the worker
//! pool size is `HONGTU_THREADS`, so the parallel assertions certify the
//! inference executor at every pool size.

use hongtu::core::{
    CommMode, ExecutionMode, HongTuConfig, HongTuEngine, Mode, OverlapMode, Session,
    ValidationLevel,
};
use hongtu::datasets::dataset::{Dataset, DatasetKey};
use hongtu::datasets::load;
use hongtu::nn::ModelKind;
use hongtu::sim::MachineConfig;
use hongtu::tensor::{Matrix, SeededRng};
use hongtu::verify::{verify_determinism, verify_trace};

fn test_seed() -> u64 {
    std::env::var("HONGTU_TEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(99)
}

fn dataset() -> Dataset {
    load(DatasetKey::Rdt, &mut SeededRng::new(test_seed()))
}

fn config(
    gpus: usize,
    comm: CommMode,
    overlap: OverlapMode,
    exec: ExecutionMode,
    mode: Mode,
) -> HongTuConfig {
    HongTuConfig::builder()
        .machine(MachineConfig::scaled(gpus, 512 << 20))
        .comm(comm)
        .reorganize(comm != CommMode::Vanilla)
        .overlap(overlap)
        .exec(exec)
        .mode(mode)
        .build()
        .expect("valid config")
}

/// Logits of one *training* epoch's forward half (pre-update weights).
fn train_forward_logits(ds: &Dataset, kind: ModelKind, cfg: HongTuConfig) -> Matrix {
    let mut engine = HongTuEngine::new(ds, kind, 16, 2, 4, cfg).expect("engine");
    engine.train_epoch().expect("train epoch");
    engine.logits().clone()
}

/// Logits + sim time of one inference epoch on a fresh `Mode::Infer`
/// session, driven through the `Inferencer` executor.
fn infer_logits(ds: &Dataset, kind: ModelKind, cfg: HongTuConfig) -> (Matrix, f64) {
    let mut session = Session::new(ds, kind, 16, 2, 4, cfg).expect("session");
    let report = session.inferencer().epoch().expect("infer epoch");
    assert_eq!(
        report.logits,
        *session.logits(),
        "report logits must alias the session's h^L"
    );
    (report.logits, report.time)
}

/// The inference determinism contract across the full ISSUE matrix:
/// every {exec × overlap} combination of `infer_epoch` reproduces the
/// training forward pass bit for bit, for every model, comm mode and
/// GPU count.
#[test]
fn infer_matches_train_forward_bitwise_across_matrix() {
    let ds = dataset();
    for kind in [ModelKind::Gcn, ModelKind::Gat, ModelKind::Sage] {
        for comm in [CommMode::Vanilla, CommMode::P2p, CommMode::P2pRu] {
            for gpus in [1, 2, 4] {
                let reference = train_forward_logits(
                    &ds,
                    kind,
                    config(
                        gpus,
                        comm,
                        OverlapMode::Off,
                        ExecutionMode::Sequential,
                        Mode::Train,
                    ),
                );
                for overlap in [OverlapMode::Off, OverlapMode::DoubleBuffer] {
                    for exec in [ExecutionMode::Sequential, ExecutionMode::Parallel] {
                        let (logits, _) =
                            infer_logits(&ds, kind, config(gpus, comm, overlap, exec, Mode::Infer));
                        assert_eq!(
                            logits,
                            reference,
                            "{} / {comm:?} / {gpus} GPUs / {overlap:?} / {exec:?}: \
                             inference logits diverged from the training forward pass",
                            kind.name()
                        );
                    }
                }
            }
        }
    }
}

/// Inference sessions run strictly below the training run's peaks on
/// both tiers: the GPUs drop the 2× Adam moment state, the host drops
/// the ∇h stores and the hybrid checkpoint cache.
#[test]
fn infer_peak_memory_strictly_below_training() {
    let ds = dataset();
    for overlap in [OverlapMode::Off, OverlapMode::DoubleBuffer] {
        let (train_gpu, train_host) = {
            let cfg = config(
                4,
                CommMode::P2pRu,
                overlap,
                ExecutionMode::Sequential,
                Mode::Train,
            );
            let mut engine = HongTuEngine::new(&ds, ModelKind::Gcn, 16, 2, 4, cfg).expect("engine");
            engine.train_epoch().expect("train epoch");
            (
                engine.machine().max_gpu_peak(),
                engine.machine().host_memory().peak(),
            )
        };
        let cfg = config(
            4,
            CommMode::P2pRu,
            overlap,
            ExecutionMode::Sequential,
            Mode::Infer,
        );
        let mut session = Session::new(&ds, ModelKind::Gcn, 16, 2, 4, cfg).expect("session");
        let report = session.infer_epoch().expect("infer epoch");
        assert!(
            report.peak_gpu_bytes < train_gpu,
            "{overlap:?}: inference GPU peak {} !< training {}",
            report.peak_gpu_bytes,
            train_gpu
        );
        assert!(
            report.peak_host_bytes < train_host,
            "{overlap:?}: inference host peak {} !< training {}",
            report.peak_host_bytes,
            train_host
        );
        assert!(report.time > 0.0);
        assert!(report.buckets.h2d > 0.0);
        assert!(report.buckets.gpu > 0.0);
    }
}

/// Double buffering overlaps inference too: on a multi-GPU dedup
/// configuration the overlapped forward pass is strictly faster than the
/// additive schedule, without changing a single logit bit (already
/// pinned by the matrix test above).
#[test]
fn overlapped_inference_is_strictly_faster() {
    let ds = dataset();
    let (_, t_off) = infer_logits(
        &ds,
        ModelKind::Gcn,
        config(
            4,
            CommMode::P2pRu,
            OverlapMode::Off,
            ExecutionMode::Sequential,
            Mode::Infer,
        ),
    );
    let (_, t_db) = infer_logits(
        &ds,
        ModelKind::Gcn,
        config(
            4,
            CommMode::P2pRu,
            OverlapMode::DoubleBuffer,
            ExecutionMode::Sequential,
            Mode::Infer,
        ),
    );
    assert!(t_db < t_off, "overlapped {t_db} !< additive {t_off}");
}

fn traced_infer_epoch(
    ds: &Dataset,
    overlap: OverlapMode,
    exec: ExecutionMode,
) -> hongtu::sim::Trace {
    let cfg = config(4, CommMode::P2pRu, overlap, exec, Mode::Infer);
    let mut session = Session::new(ds, ModelKind::Gcn, 16, 2, 4, cfg).expect("session");
    session.machine_mut().enable_unbounded_trace();
    session.infer_epoch().expect("infer epoch");
    session.machine().trace().clone()
}

/// Every inference schedule — additive and overlapped, sequential and
/// parallel — certifies race-free under the happens-before checker, and
/// each parallel trace is equivalent to its sequential reference.
#[test]
fn inference_traces_certified_race_free() {
    let ds = dataset();
    for overlap in [OverlapMode::Off, OverlapMode::DoubleBuffer] {
        let seq = traced_infer_epoch(&ds, overlap, ExecutionMode::Sequential);
        let report = verify_trace(&seq);
        assert!(
            report.is_ok(),
            "{overlap:?} sequential inference not certified:\n{}",
            report.render()
        );
        let par = traced_infer_epoch(&ds, overlap, ExecutionMode::Parallel);
        let report = verify_trace(&par);
        assert!(
            report.is_ok(),
            "{overlap:?} parallel inference not certified:\n{}",
            report.render()
        );
        let report = verify_determinism(&seq, &par);
        assert!(
            report.is_ok(),
            "{overlap:?}: parallel inference not equivalent to sequential:\n{}",
            report.render()
        );
    }
}

/// Paranoid validation re-certifies the inference schedule inside
/// `infer_epoch` itself, in both execution modes and all comm modes.
#[test]
fn paranoid_certifies_inference_epochs() {
    let ds = dataset();
    for comm in [CommMode::Vanilla, CommMode::P2p, CommMode::P2pRu] {
        for exec in [ExecutionMode::Sequential, ExecutionMode::Parallel] {
            let cfg = HongTuConfig::builder()
                .machine(MachineConfig::scaled(4, 512 << 20))
                .comm(comm)
                .reorganize(comm != CommMode::Vanilla)
                .overlap(OverlapMode::DoubleBuffer)
                .exec(exec)
                .validation(ValidationLevel::Paranoid)
                .infer()
                .build()
                .expect("valid config");
            let mut session = Session::new(&ds, ModelKind::Gcn, 16, 2, 4, cfg).expect("session");
            session
                .infer_epoch()
                .unwrap_or_else(|e| panic!("{comm:?}/{exec:?}: {e}"));
        }
    }
}

/// Repeated inference epochs on one session are idempotent: same model,
/// same graph, bit-identical logits every time.
#[test]
fn repeated_inference_is_idempotent() {
    let ds = dataset();
    let cfg = config(
        2,
        CommMode::P2pRu,
        OverlapMode::Off,
        ExecutionMode::Sequential,
        Mode::Infer,
    );
    let mut session = Session::new(&ds, ModelKind::Gcn, 16, 2, 4, cfg).expect("session");
    let first = session.infer_epoch().expect("epoch 1");
    let second = session.infer_epoch().expect("epoch 2");
    assert_eq!(first.logits, second.logits);
    assert_eq!(session.epochs_run(), 2);
}

/// Training entry points refuse an inference session instead of running
/// against missing gradient/optimizer allocations.
#[test]
#[should_panic(expected = "train_epoch on an inference session")]
fn train_epoch_on_infer_session_panics() {
    let ds = dataset();
    let cfg = config(
        2,
        CommMode::Vanilla,
        OverlapMode::Off,
        ExecutionMode::Sequential,
        Mode::Infer,
    );
    let mut engine = HongTuEngine::new(&ds, ModelKind::Gcn, 16, 2, 4, cfg).expect("engine");
    let _ = engine.train_epoch();
}

/// One validated session serves both executors: train through the
/// `Trainer`, then run a forward-only epoch on the *same* session — the
/// inference logits must match the logits of the forward pass over the
/// trained (post-update) weights, i.e. a subsequent training epoch's
/// forward half.
#[test]
fn shared_session_trains_then_serves() {
    let ds = dataset();
    let mk = || {
        Session::new(
            &ds,
            ModelKind::Gcn,
            16,
            2,
            4,
            config(
                2,
                CommMode::P2pRu,
                OverlapMode::Off,
                ExecutionMode::Sequential,
                Mode::Train,
            ),
        )
        .expect("session")
    };
    let mut session = mk();
    {
        let mut trainer = session.trainer();
        for _ in 0..2 {
            trainer.epoch().expect("train epoch");
        }
    }
    let served = session.infer_epoch().expect("infer epoch").logits;
    // Reference: 2 training epochs on an identical session, then read the
    // *third* epoch's forward logits (forward over the twice-updated
    // weights).
    let mut reference = mk();
    let mut trainer = reference.trainer();
    for _ in 0..3 {
        trainer.epoch().expect("train epoch");
    }
    assert_eq!(served, *trainer.session().logits());
}
