//! Property tests for pass 9 (dataflow conservation, `F8xx`).
//!
//! Two halves of the soundness argument:
//!
//! - **Clean engines certify.** For random datasets × every comm mode ×
//!   phased/overlapped executors × train/infer, the synthesized
//!   schedule's contribution multisets balance against the plan-derived
//!   [`DataflowSpec`] with zero findings — the pass has no false
//!   positives on schedules the engine actually produces.
//! - **The F806 oracle is exact.** The dedup decomposition recorded in a
//!   spec (host / P2P-fetch / reuse rows, per owner) must carry the same
//!   per-owner multiset as the *vanilla comparator* — the raw chunk
//!   neighbor demands recomputed by [`demand_by_owner`] straight from
//!   the partition, bypassing the dedup plan entirely. This is the
//!   equality F806 enforces at aggregation time, proven here for every
//!   random plan rather than one engine's schedule.

use hongtu::core::{CommMode, HongTuConfig, HongTuEngine, MemoryStrategy, Mode, OverlapMode};
use hongtu::datasets::dataset::{with_self_loops, Dataset, DatasetKey, Splits};
use hongtu::graph::generators;
use hongtu::nn::ModelKind;
use hongtu::partition::{DedupPlan, GpuBufferPlan, TwoLevelPartition};
use hongtu::sim::MachineConfig;
use hongtu::tensor::{Matrix, SeededRng};
use hongtu::verify::{demand_by_owner, CommKind, DataflowSpec};
use proptest::prelude::*;

fn random_dataset(seed: u64, n: usize) -> Dataset {
    let rng = SeededRng::new(seed);
    let g = generators::erdos_renyi(n, 4.0, &mut rng.fork(1));
    let graph = with_self_loops(&g);
    let mut frng = rng.fork(2);
    let features = Matrix::from_fn(n, 5, |_, _| frng.normal() * 0.5);
    let mut lrng = rng.fork(3);
    let labels: Vec<u32> = (0..n).map(|_| lrng.index(3) as u32).collect();
    let splits = Splits::random(n, 0.4, 0.2, &mut rng.fork(4));
    Dataset {
        key: DatasetKey::Rdt,
        graph,
        features,
        labels,
        splits,
        num_classes: 3,
        seed,
    }
}

const COMMS: [CommMode; 3] = [CommMode::Vanilla, CommMode::P2p, CommMode::P2pRu];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random clean engines certify conserved under every comm mode —
    /// the executor cube is sliced by the sampled bits so each case
    /// stays cheap while the whole run covers it.
    #[test]
    fn clean_schedules_certify_conserved(
        seed in 0u64..1000,
        n in 60usize..200,
        gpus_sel in 0usize..3,
        cfg_bits in 0u32..8,
    ) {
        let ds = random_dataset(seed, n);
        let gpus = [1, 2, 4][gpus_sel];
        let overlap = if cfg_bits & 1 == 0 { OverlapMode::Off } else { OverlapMode::DoubleBuffer };
        let memory = if cfg_bits & 2 == 0 { MemoryStrategy::Hybrid } else { MemoryStrategy::Recompute };
        let mode = if cfg_bits & 4 == 0 { Mode::Train } else { Mode::Infer };
        for comm in COMMS {
            let machine = MachineConfig::scaled(gpus, 512 << 20);
            let mut config = HongTuConfig::full(machine);
            config.comm = comm;
            config.overlap = overlap;
            config.memory = memory;
            config.mode = mode;
            config.reorganize = comm != CommMode::Vanilla;
            let engine = HongTuEngine::new(&ds, ModelKind::Gcn, 6, 2, 3, config)
                .expect("engine");
            let report = engine.session().certify_dataflow().expect("synthesis");
            prop_assert!(
                report.is_ok(),
                "{comm:?} {gpus}g {overlap:?} {memory:?} {mode:?}:\n{}",
                report.render()
            );
        }
    }

    /// The vanilla-vs-dedup comparator equality (the F806 oracle): for
    /// every chunk of every random plan, the dedup'd supply decomposition
    /// carries exactly the per-owner demand multiset that vanilla would —
    /// remote owners served row-for-row by fetch + reuse, the own
    /// partition covered (never undershot) by the transition set.
    #[test]
    fn dedup_spec_matches_vanilla_comparator(
        seed in 0u64..1000,
        n in 200usize..900,
        m in 1usize..5,
        chunks in 1usize..6,
    ) {
        let mut rng = SeededRng::new(seed);
        let g = generators::web_hybrid(n, 5.0, 0.9, 20.0, &mut rng);
        let plan = TwoLevelPartition::build(&g, m, chunks, seed);
        let dedup = DedupPlan::build(&plan);
        let bufs = GpuBufferPlan::build_all(&plan, &dedup);

        let vanilla = DataflowSpec::from_plans(&plan, &dedup, None, CommKind::Vanilla);
        let p2p = DataflowSpec::from_plans(&plan, &dedup, None, CommKind::P2p);
        let p2pru = DataflowSpec::from_plans(&plan, &dedup, Some(&bufs), CommKind::P2pRu);

        for i in 0..m {
            for j in 0..chunks {
                let demand = demand_by_owner(&plan, i, j);
                let total: usize = demand.iter().sum();
                // Vanilla: one mixed host load carries the whole multiset.
                prop_assert_eq!(vanilla.flows[i][j].host_rows, total);

                for (spec, has_reuse) in [(&p2p, false), (&p2pru, true)] {
                    let flow = &spec.flows[i][j];
                    prop_assert_eq!(flow.demand_by_owner.clone(), demand.clone());
                    if !has_reuse {
                        prop_assert_eq!(flow.reuse_rows, 0);
                    }
                    for (k, &owner_demand) in demand.iter().enumerate() {
                        if k == i {
                            continue;
                        }
                        prop_assert_eq!(
                            flow.fetch_rows[k] + flow.reuse_by_owner[k],
                            owner_demand,
                            "gpu {} batch {} owner {}", i, j, k
                        );
                    }
                    prop_assert!(
                        flow.host_rows + flow.reuse_by_owner[i] >= demand[i],
                        "gpu {} batch {}: transition supply {} under own demand {}",
                        i, j, flow.host_rows + flow.reuse_by_owner[i], demand[i]
                    );
                    // Total conservation: what the ledgers will sum at
                    // aggregation time equals the planned supply.
                    let supply: usize =
                        flow.host_rows + flow.reuse_rows + flow.fetch_rows.iter().sum::<usize>();
                    prop_assert!(supply >= total);
                }
            }
        }
    }
}
