//! Cross-crate checks of the comparator systems against the paper's
//! fits/OOM pattern and runtime orderings, at the scaled experiment
//! configuration.

use hongtu::core::systems::{
    CpuSystem, CpuSystemKind, InMemoryKind, MiniBatchSystem, MultiGpuInMemory, SingleGpuFullGraph,
    Workload,
};
use hongtu::core::{HongTuConfig, HongTuEngine};
use hongtu::datasets::{load, DatasetKey};
use hongtu::nn::ModelKind;
use hongtu::sim::{CpuClusterConfig, MachineConfig};
use hongtu::tensor::SeededRng;

const GPU_MEM: usize = 34 << 20;
const SEED: u64 = 20230246;

fn ds(key: DatasetKey) -> hongtu::datasets::Dataset {
    load(key, &mut SeededRng::new(SEED))
}

fn machine(gpus: usize) -> MachineConfig {
    MachineConfig::scaled(gpus, GPU_MEM)
}

/// Paper Table 6's central claim: in-memory multi-GPU systems hold the
/// small graphs at any depth but none of the large ones; HongTu holds all.
#[test]
fn memory_wall_matches_paper() {
    for key in [DatasetKey::Rdt, DatasetKey::Opt] {
        let d = ds(key);
        let im = MultiGpuInMemory::new(InMemoryKind::HongTuIm, machine(4), &d, 1);
        for layers in [2usize, 4, 8] {
            let w = Workload::new(&d, ModelKind::Gcn, 32, layers);
            assert!(
                im.epoch_time(&w).is_ok(),
                "{key:?} GCN-{layers} should fit in memory"
            );
        }
    }
    for key in [DatasetKey::It, DatasetKey::Opr, DatasetKey::Fds] {
        let d = ds(key);
        let im = MultiGpuInMemory::new(InMemoryKind::HongTuIm, machine(4), &d, 1);
        let sancus = MultiGpuInMemory::new(InMemoryKind::Sancus, machine(4), &d, 1);
        let w = Workload::new(&d, ModelKind::Gcn, 32, 2);
        assert!(im.epoch_time(&w).is_err(), "{key:?} must OOM in-memory");
        assert!(sancus.epoch_time(&w).is_err(), "{key:?} must OOM on Sancus");
        // ...but HongTu trains it.
        let mut engine = HongTuEngine::new(
            &d,
            ModelKind::Gcn,
            32,
            2,
            32,
            HongTuConfig::full(machine(4)),
        )
        .expect("HongTu engine must fit");
        assert!(engine.train_epoch().is_ok(), "{key:?} HongTu epoch");
    }
}

/// Table 5 ordering on small graphs: GPU systems beat the CPU system by
/// an order of magnitude; HongTu pays a bounded offloading overhead over
/// the in-memory variant.
#[test]
fn small_graph_system_ordering() {
    let d = ds(DatasetKey::Rdt);
    let w = Workload::new(&d, ModelKind::Gcn, 32, 2);
    let cpu = CpuSystem::new(
        CpuSystemKind::SingleNode,
        CpuClusterConfig::scaled(1, 1 << 34),
        &d,
    )
    .epoch_time(&w)
    .unwrap();
    let dgl = SingleGpuFullGraph::new(machine(1)).epoch_time(&w).unwrap();
    let im = MultiGpuInMemory::new(InMemoryKind::HongTuIm, machine(4), &d, 1)
        .epoch_time(&w)
        .unwrap();
    let hongtu = HongTuEngine::new(&d, ModelKind::Gcn, 32, 2, 1, HongTuConfig::full(machine(4)))
        .unwrap()
        .train_epoch()
        .unwrap()
        .time;
    assert!(cpu > 10.0 * dgl, "CPU {cpu} vs DGL {dgl}");
    assert!(
        hongtu > im,
        "offloading must cost something: {hongtu} vs {im}"
    );
    assert!(
        hongtu < 10.0 * im,
        "offloading overhead is bounded: {hongtu} vs {im}"
    );
}

/// Table 6's DistDGL behaviour: neighbor explosion makes deep sampled
/// training blow up superlinearly, and the tiny-train-split OPR is where
/// mini-batch wins over full-graph.
#[test]
fn minibatch_explosion_and_opr_win() {
    let it = ds(DatasetKey::It);
    let mb = MiniBatchSystem::new(machine(4), 64, SEED);
    let t2 = mb
        .epoch_time(&Workload::new(&it, ModelKind::Gcn, 32, 2))
        .unwrap();
    let t4 = mb
        .epoch_time(&Workload::new(&it, ModelKind::Gcn, 32, 4))
        .unwrap();
    assert!(t4 > 2.5 * t2, "neighbor explosion: {t2} vs {t4}");

    let opr = ds(DatasetKey::Opr);
    let mb_time = mb
        .epoch_time(&Workload::new(&opr, ModelKind::Gcn, 32, 2))
        .unwrap()
        / 4.0;
    let hongtu = HongTuEngine::new(
        &opr,
        ModelKind::Gcn,
        32,
        2,
        32,
        HongTuConfig::full(machine(4)),
    )
    .unwrap()
    .train_epoch()
    .unwrap()
    .time;
    assert!(
        mb_time < hongtu,
        "DistDGL must win on OPR (1.1% train split): {mb_time} vs {hongtu}"
    );
}

/// Table 7's DistGNN pattern: the 16-node cluster runs GCN on the large
/// graphs (except the deepest OPR config) but cannot hold GAT except on
/// the smallest; HongTu is faster wherever both run.
#[test]
fn distgnn_cluster_pattern() {
    let cluster = CpuClusterConfig::scaled(16, 100 << 20);
    for (key, gcn4_ok) in [
        (DatasetKey::It, true),
        (DatasetKey::Opr, false),
        (DatasetKey::Fds, true),
    ] {
        let d = ds(key);
        let sys = CpuSystem::new(CpuSystemKind::Cluster, cluster.clone(), &d);
        let gcn2 = sys.epoch_time(&Workload::new(&d, ModelKind::Gcn, 32, 2));
        assert!(gcn2.is_ok(), "{key:?} GCN-2 must run on the cluster");
        let gcn4 = sys.epoch_time(&Workload::new(&d, ModelKind::Gcn, 32, 4));
        assert_eq!(gcn4.is_ok(), gcn4_ok, "{key:?} GCN-4 cluster feasibility");
        // GAT on FDS/OPR must OOM; on IT the 2-layer config runs.
        let gat2 = sys.epoch_time(&Workload::new(&d, ModelKind::Gat, 32, 2));
        assert_eq!(
            gat2.is_ok(),
            key == DatasetKey::It,
            "{key:?} GAT-2 cluster feasibility"
        );
        if let Ok(dist) = gcn2 {
            let hongtu = HongTuEngine::new(
                &d,
                ModelKind::Gcn,
                32,
                2,
                32,
                HongTuConfig::full(machine(4)),
            )
            .unwrap()
            .train_epoch()
            .unwrap()
            .time;
            assert!(
                hongtu < dist,
                "{key:?}: HongTu {hongtu} must beat DistGNN {dist}"
            );
        }
    }
}
