//! Dataflow conservation certification, end to end: every supported
//! configuration's synthesized schedule must certify clean under pass 9
//! (`F8xx`) — every aggregation fed exactly its planned contribution
//! multiset, every activation consumed before overwrite, the backward
//! flow the exact transpose of the forward, dedup'd transfers carrying
//! the same per-owner multiset as the vanilla comparator.
//!
//! The non-triviality guards matter as much as the certification: a
//! schedule with no provenance annotations would certify vacuously, so
//! every config also asserts the synthesizer actually emitted tagged
//! supply, aggregation, and (for training) gradient-flush accesses.

use hongtu::core::{CommMode, HongTuConfig, HongTuEngine, MemoryStrategy, Mode, OverlapMode};
use hongtu::datasets::dataset::{with_self_loops, Dataset, DatasetKey, Splits};
use hongtu::graph::generators;
use hongtu::nn::ModelKind;
use hongtu::sim::{ContribKind, MachineConfig};
use hongtu::tensor::{Matrix, SeededRng};

const KINDS: [ModelKind; 3] = [ModelKind::Gcn, ModelKind::Gat, ModelKind::Sage];
const COMMS: [CommMode; 3] = [CommMode::Vanilla, CommMode::P2p, CommMode::P2pRu];
const GPUS: [usize; 3] = [1, 2, 4];
const OVERLAPS: [OverlapMode; 2] = [OverlapMode::Off, OverlapMode::DoubleBuffer];

/// An ad-hoc random dataset (not from the registry).
fn random_dataset(seed: u64, n: usize) -> Dataset {
    let rng = SeededRng::new(seed);
    let g = generators::erdos_renyi(n, 5.0, &mut rng.fork(1));
    let graph = with_self_loops(&g);
    let mut frng = rng.fork(2);
    let features = Matrix::from_fn(n, 6, |_, _| frng.normal() * 0.5);
    let mut lrng = rng.fork(3);
    let labels: Vec<u32> = (0..n).map(|_| lrng.index(3) as u32).collect();
    let splits = Splits::random(n, 0.4, 0.2, &mut rng.fork(4));
    Dataset {
        key: DatasetKey::Rdt,
        graph,
        features,
        labels,
        splits,
        num_classes: 3,
        seed,
    }
}

fn engine_for(
    ds: &Dataset,
    kind: ModelKind,
    gpus: usize,
    comm: CommMode,
    overlap: OverlapMode,
    memory: MemoryStrategy,
    mode: Mode,
) -> HongTuEngine {
    let machine = MachineConfig::scaled(gpus, 512 << 20);
    let mut config = HongTuConfig::full(machine);
    config.comm = comm;
    config.overlap = overlap;
    config.memory = memory;
    config.mode = mode;
    config.reorganize = comm != CommMode::Vanilla;
    HongTuEngine::new(ds, kind, 8, 2, 4, config).expect("engine")
}

/// The pass-9 gate for one configuration: the synthesized schedule
/// certifies conserved, and the certification was not vacuous.
fn check_config(
    ds: &Dataset,
    kind: ModelKind,
    gpus: usize,
    comm: CommMode,
    overlap: OverlapMode,
    memory: MemoryStrategy,
    mode: Mode,
) {
    let label = format!(
        "{} {comm:?} {gpus}g {overlap:?} {memory:?} {mode:?}",
        kind.name()
    );
    let engine = engine_for(ds, kind, gpus, comm, overlap, memory, mode);

    let report = engine
        .session()
        .certify_dataflow()
        .expect("schedule synthesis");
    assert!(report.is_ok(), "{label}: {}", report.render());

    // Vacuity guard: the schedule must actually carry provenance for
    // the flows the pass balances.
    let synth = engine
        .session()
        .synthesize_schedule()
        .expect("schedule synthesis");
    let mut aggregates = 0usize;
    let mut supplies = 0usize;
    let mut flushes = 0usize;
    for event in synth.events() {
        for access in &event.accesses {
            match access.prov.map(|p| p.kind) {
                Some(ContribKind::Aggregate) => aggregates += 1,
                Some(ContribKind::HostLoad | ContribKind::Reuse | ContribKind::Fetch) => {
                    supplies += 1
                }
                Some(ContribKind::GradFlush) => flushes += 1,
                _ => {}
            }
        }
    }
    assert!(aggregates > 0, "{label}: no provenance-tagged aggregations");
    assert!(supplies > 0, "{label}: no provenance-tagged supply");
    match mode {
        Mode::Train => assert!(
            flushes > 0,
            "{label}: no provenance-tagged gradient flushes"
        ),
        Mode::Infer => assert_eq!(flushes, 0, "{label}: inference must not flush gradients"),
    }
}

/// {GCN,GAT,SAGE} × {vanilla,p2p,p2pru} × {1,2,4} GPUs, phased executor.
#[test]
fn train_matrix_conserves_phased() {
    let ds = random_dataset(7, 220);
    for kind in KINDS {
        for comm in COMMS {
            for gpus in GPUS {
                check_config(
                    &ds,
                    kind,
                    gpus,
                    comm,
                    OverlapMode::Off,
                    MemoryStrategy::Hybrid,
                    Mode::Train,
                );
            }
        }
    }
}

/// Same matrix under the double-buffered overlap executor (slot-keyed
/// ledgers, reuse handoffs crossing pipeline segments).
#[test]
fn train_matrix_conserves_doublebuffer() {
    let ds = random_dataset(7, 220);
    for kind in KINDS {
        for comm in COMMS {
            for gpus in GPUS {
                check_config(
                    &ds,
                    kind,
                    gpus,
                    comm,
                    OverlapMode::DoubleBuffer,
                    MemoryStrategy::Hybrid,
                    Mode::Train,
                );
            }
        }
    }
}

/// Recompute checkpointing re-opens the forward supply ledgers during
/// the backward pass — the whole comm × gpus × overlap cube must still
/// conserve.
#[test]
fn recompute_matrix_conserves() {
    let ds = random_dataset(11, 220);
    for comm in COMMS {
        for gpus in GPUS {
            for overlap in OVERLAPS {
                check_config(
                    &ds,
                    ModelKind::Gcn,
                    gpus,
                    comm,
                    overlap,
                    MemoryStrategy::Recompute,
                    Mode::Train,
                );
            }
        }
    }
}

/// Forward-only inference: supply and aggregation conserve, and no
/// gradient flow exists to balance.
#[test]
fn infer_matrix_conserves() {
    let ds = random_dataset(19, 220);
    for comm in COMMS {
        for gpus in GPUS {
            for overlap in OVERLAPS {
                check_config(
                    &ds,
                    ModelKind::Gcn,
                    gpus,
                    comm,
                    overlap,
                    MemoryStrategy::Hybrid,
                    Mode::Infer,
                );
            }
        }
    }
}
