//! Certification of the dual-stream overlap executor: double-buffered
//! pipelining must change *only* simulated time and memory — losses and
//! accuracies stay bitwise identical to the additive schedule — and every
//! overlapped schedule (sequential and parallel host execution) must
//! certify race-free under the happens-before checker. A hand-built
//! counterexample pins down the hazard the stream discipline exists to
//! prevent: an eager ℕ^gpu refill into a live slot races the P2P reads
//! (and the prefetch H2D) still using it, and the checker rejects it.
//!
//! The RNG seed is `HONGTU_TEST_SEED` when set, 99 otherwise; the worker
//! pool size is `HONGTU_THREADS`, so the parallel assertions certify the
//! overlap executor at every pool size.

use hongtu::core::{
    CommMode, ExecutionMode, HongTuConfig, HongTuEngine, MemoryStrategy, OverlapMode,
    ValidationLevel,
};
use hongtu::datasets::dataset::{Dataset, DatasetKey};
use hongtu::datasets::load;
use hongtu::nn::ModelKind;
use hongtu::sim::{
    Access, BarrierScope, Device, Event, EventKind, MachineConfig, Region, ResourceId, Trace,
};
use hongtu::stream::{rep_slot, StreamId};
use hongtu::tensor::SeededRng;
use hongtu::verify::{verify_determinism, verify_trace, DiagCode};

fn test_seed() -> u64 {
    std::env::var("HONGTU_TEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(99)
}

fn dataset() -> Dataset {
    load(DatasetKey::Rdt, &mut SeededRng::new(test_seed()))
}

fn config(gpus: usize, comm: CommMode, overlap: OverlapMode, exec: ExecutionMode) -> HongTuConfig {
    let mut cfg = HongTuConfig::full(MachineConfig::scaled(gpus, 512 << 20));
    cfg.comm = comm;
    cfg.reorganize = comm != CommMode::Vanilla;
    cfg.overlap = overlap;
    cfg.exec = exec;
    cfg
}

/// Per-epoch results that must match bitwise across overlap modes
/// (simulated time and memory are *expected* to differ).
#[derive(Debug, PartialEq)]
struct EpochResults {
    loss: f32,
    accuracy: f32,
    val: f32,
    test: f32,
}

fn run_epochs(
    ds: &Dataset,
    kind: ModelKind,
    cfg: HongTuConfig,
    epochs: usize,
) -> (Vec<EpochResults>, f64) {
    let mut engine = HongTuEngine::new(ds, kind, 16, 2, 4, cfg).expect("engine");
    let mut time = 0.0;
    let results = (0..epochs)
        .map(|_| {
            let r = engine.train_epoch().expect("epoch");
            time += r.time;
            EpochResults {
                loss: r.loss.loss,
                accuracy: r.loss.accuracy,
                val: engine.accuracy(&ds.splits.val),
                test: engine.accuracy(&ds.splits.test),
            }
        })
        .collect();
    (results, time)
}

/// The overlap determinism contract, across models × comm modes × GPU
/// counts: double buffering never changes a loss or an accuracy (f32
/// equality, no tolerance), and on every multi-GPU dedup configuration
/// it is *strictly* faster than the additive schedule.
#[test]
fn double_buffer_matches_off_bitwise_and_overlaps() {
    let ds = dataset();
    for kind in [ModelKind::Gcn, ModelKind::Gat, ModelKind::Sage] {
        for comm in [CommMode::Vanilla, CommMode::P2p, CommMode::P2pRu] {
            for gpus in [1, 2, 4] {
                let (off, t_off) = run_epochs(
                    &ds,
                    kind,
                    config(gpus, comm, OverlapMode::Off, ExecutionMode::Sequential),
                    2,
                );
                let (db, t_db) = run_epochs(
                    &ds,
                    kind,
                    config(
                        gpus,
                        comm,
                        OverlapMode::DoubleBuffer,
                        ExecutionMode::Sequential,
                    ),
                    2,
                );
                assert_eq!(
                    off,
                    db,
                    "{} / {comm:?} / {gpus} GPUs: double buffering changed results",
                    kind.name()
                );
                if gpus > 1 && comm != CommMode::Vanilla {
                    assert!(
                        t_db < t_off,
                        "{} / {comm:?} / {gpus} GPUs: overlapped {t_db} !< additive {t_off}",
                        kind.name()
                    );
                }
            }
        }
    }
}

/// The parallel host executor drives the overlapped schedule to bitwise
/// identical results and simulated clocks.
#[test]
fn overlapped_parallel_matches_sequential_bitwise() {
    let ds = dataset();
    for comm in [CommMode::Vanilla, CommMode::P2pRu] {
        let (seq, t_seq) = run_epochs(
            &ds,
            ModelKind::Gcn,
            config(
                4,
                comm,
                OverlapMode::DoubleBuffer,
                ExecutionMode::Sequential,
            ),
            2,
        );
        let (par, t_par) = run_epochs(
            &ds,
            ModelKind::Gcn,
            config(4, comm, OverlapMode::DoubleBuffer, ExecutionMode::Parallel),
            2,
        );
        assert_eq!(seq, par, "{comm:?}: parallel overlap diverged");
        assert_eq!(t_seq, t_par, "{comm:?}: simulated time diverged");
    }
}

fn traced_epoch(
    ds: &Dataset,
    comm: CommMode,
    memory: MemoryStrategy,
    exec: ExecutionMode,
) -> Trace {
    let mut cfg = config(4, comm, OverlapMode::DoubleBuffer, exec);
    cfg.memory = memory;
    let mut engine = HongTuEngine::new(ds, ModelKind::Gcn, 16, 2, 4, cfg).expect("engine");
    engine.machine_mut().enable_unbounded_trace();
    engine.train_epoch().expect("epoch");
    engine.machine().trace().clone()
}

/// Every overlapped schedule — sequential and parallel, recompute and
/// hybrid — certifies race-free under the happens-before checker, and
/// the parallel trace is equivalent to the sequential one.
#[test]
fn overlapped_traces_certified_race_free() {
    let ds = dataset();
    for memory in [MemoryStrategy::Recompute, MemoryStrategy::Hybrid] {
        let seq = traced_epoch(&ds, CommMode::P2pRu, memory, ExecutionMode::Sequential);
        let report = verify_trace(&seq);
        assert!(
            report.is_ok(),
            "{memory:?} sequential overlap not certified:\n{}",
            report.render()
        );
        let par = traced_epoch(&ds, CommMode::P2pRu, memory, ExecutionMode::Parallel);
        let report = verify_trace(&par);
        assert!(
            report.is_ok(),
            "{memory:?} parallel overlap not certified:\n{}",
            report.render()
        );
        let report = verify_determinism(&seq, &par);
        assert!(
            report.is_ok(),
            "{memory:?}: parallel overlap not equivalent to sequential:\n{}",
            report.render()
        );
    }
}

/// Paranoid validation re-certifies the overlapped schedule inside
/// `train_epoch` itself, in both execution modes and all comm modes.
#[test]
fn paranoid_certifies_overlapped_epochs() {
    let ds = dataset();
    for comm in [CommMode::Vanilla, CommMode::P2p, CommMode::P2pRu] {
        for exec in [ExecutionMode::Sequential, ExecutionMode::Parallel] {
            let mut cfg = config(4, comm, OverlapMode::DoubleBuffer, exec);
            cfg.validation = ValidationLevel::Paranoid;
            let mut engine = HongTuEngine::new(&ds, ModelKind::Gcn, 16, 2, 4, cfg).expect("engine");
            engine
                .train_epoch()
                .unwrap_or_else(|e| panic!("{comm:?}/{exec:?}: {e}"));
        }
    }
}

fn ev(g: u32, stream: StreamId, kind: EventKind, accesses: Vec<Access>) -> Event {
    Event::new(kind, Device::Gpu(g), 0, 1e-6, 0.0)
        .with_accesses(accesses)
        .on_stream(stream.id())
}

fn slot(gpu: usize, batch: usize) -> ResourceId {
    rep_slot(gpu, batch)
}

/// Prologue shared by the hand-built schedules below: both GPUs' copy-in
/// streams populate their slot-0 staging (generation 0), settled by a
/// phase barrier — the state at the top of a steady segment.
fn staged_prologue() -> Trace {
    let mut t = Trace::unbounded();
    for g in 0..2u32 {
        t.record(ev(
            g,
            StreamId::CopyIn,
            EventKind::H2D,
            vec![Access::write(slot(g as usize, 0), Region::Owned).with_gen(0)],
        ));
    }
    t.record(Event::new(
        EventKind::Barrier(BarrierScope::Phase),
        Device::Host,
        0,
        0.0,
        0.0,
    ));
    t
}

/// The hazard the slot rotation exists to prevent: GPU 0 *eagerly*
/// refills its live slot-0 buffer with the next batch's ℕ^gpu rows while
/// GPU 1's P2P fetch is still reading that buffer in the same segment.
/// The checker rejects the write/read race.
#[test]
fn eager_reuse_refill_racing_p2p_read_is_rejected() {
    let mut t = staged_prologue();
    // GPU 1 fetches batch 0's remote transition rows from GPU 0's slot.
    t.record(ev(
        1,
        StreamId::Compute,
        EventKind::D2D,
        vec![
            Access::read(slot(0, 0), Region::Owned).with_gen(0),
            Access::write(slot(1, 0), Region::Fetched).with_gen(0),
        ],
    ));
    // Eager refill: batch 1's reused rows clobber the *same* slot in the
    // same segment (no double buffering, no barrier in between).
    t.record(ev(
        0,
        StreamId::Compute,
        EventKind::Reuse,
        vec![
            Access::read(slot(0, 0), Region::Owned).with_gen(0),
            Access::write(slot(0, 0), Region::Owned).with_gen(1),
        ],
    ));
    let report = verify_trace(&t);
    assert!(
        report.has(DiagCode::RaceWriteRead),
        "eager refill not rejected:\n{}",
        report.render()
    );
}

/// With the slot rotation the refill targets the *other* slot — but it
/// still conflicts with the copy-in stream's prefetch H2D filling that
/// slot concurrently. Without a stream wait the checker rejects it; with
/// the `cudaStreamWaitEvent` analogue the schedule is certified.
#[test]
fn rotated_refill_needs_the_stream_wait() {
    let build = |with_wait: bool| {
        let mut t = staged_prologue();
        // Copy-in prefetches batch 1's host rows into slot 1.
        t.record(ev(
            0,
            StreamId::CopyIn,
            EventKind::H2D,
            vec![Access::write(slot(0, 1), Region::Owned).with_gen(1)],
        ));
        if with_wait {
            t.record(ev(
                0,
                StreamId::Compute,
                EventKind::StreamWait {
                    upstream: StreamId::CopyIn.id(),
                },
                vec![],
            ));
        }
        // The compute stream hands batch 1's reused rows into slot 1.
        t.record(ev(
            0,
            StreamId::Compute,
            EventKind::Reuse,
            vec![
                Access::read(slot(0, 0), Region::Owned).with_gen(0),
                Access::write(slot(0, 1), Region::Owned).with_gen(1),
            ],
        ));
        verify_trace(&t)
    };
    let racy = build(false);
    assert!(
        racy.has(DiagCode::RaceWriteWrite),
        "unordered cross-stream refill not rejected:\n{}",
        racy.render()
    );
    let clean = build(true);
    assert!(clean.is_ok(), "waited refill rejected:\n{}", clean.render());
}
