//! Certification of the dynamic-graph delta path:
//! `Session::apply_deltas` must leave every host-resident layer store —
//! and hence the logits — bitwise identical to a from-scratch
//! `infer_epoch` on the mutated graph across the full
//! {model × gpus × overlap} matrix (plus all three comm modes), the
//! chunk-granular affected cone must cover a brute-force out-edge BFS
//! oracle on random graphs, the incremental replay schedule must
//! certify clean under the static passes (including Paranoid, which
//! re-certifies inside `apply_deltas` itself), and a small delta must
//! cost strictly less than the full-recompute baseline.
//!
//! The bitwise comparison works because the rebuild oracle inherits the
//! dataset seed (`DynamicGraph::to_dataset`), so a fresh session on the
//! mutated graph holds the same initial weights, and per-vertex forward
//! math is independent of chunk membership: each destination aggregates
//! its in-edges in sorted global order whatever batch owns it.

use hongtu::core::{
    CommMode, HongTuConfig, Mode, OverlapMode, ServeMask, Session, ValidationLevel,
};
use hongtu::datasets::dataset::{with_self_loops, Dataset, DatasetKey, Splits};
use hongtu::datasets::load;
use hongtu::delta::{out_edge_ball, toggle_workload, Delta, DeltaMix, DynamicGraph};
use hongtu::graph::generators;
use hongtu::nn::ModelKind;
use hongtu::partition::TwoLevelPartition;
use hongtu::sim::MachineConfig;
use hongtu::tensor::{Matrix, SeededRng};
use hongtu::verify::DEFAULT_EXPLORE_BUDGET;
use proptest::prelude::*;

fn test_seed() -> u64 {
    std::env::var("HONGTU_TEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(99)
}

fn dataset() -> Dataset {
    load(DatasetKey::Rdt, &mut SeededRng::new(test_seed()))
}

fn config(gpus: usize, overlap: OverlapMode, comm: CommMode) -> HongTuConfig {
    HongTuConfig::builder()
        .machine(MachineConfig::scaled(gpus, 512 << 20))
        .comm(comm)
        .reorganize(comm != CommMode::Vanilla)
        .overlap(overlap)
        .mode(Mode::Infer)
        .build()
        .expect("valid config")
}

fn session(ds: &Dataset, kind: ModelKind, gpus: usize, overlap: OverlapMode) -> Session {
    Session::new(ds, kind, 16, 2, 4, config(gpus, overlap, CommMode::P2pRu)).expect("session")
}

/// A small mixed mutation batch: one edge toggle and one feature
/// rewrite, deterministically derived from the base graph.
fn small_batch(dg: &DynamicGraph, seed: u64) -> Vec<Delta> {
    let mut rng = SeededRng::new(seed);
    toggle_workload(
        dg.graph(),
        dg.features().cols(),
        1,
        2,
        DeltaMix::Mixed,
        &mut rng,
    )
    .pop()
    .expect("one batch")
}

/// Incremental `apply_deltas` logits are bitwise equal to a
/// from-scratch `infer_epoch` on the mutated graph, across every model,
/// GPU count, and overlap mode. The incremental session runs first so
/// nothing about the rebuild can leak into the patched one.
#[test]
fn incremental_logits_match_rebuild_across_matrix() {
    let ds = dataset();
    for kind in [ModelKind::Gcn, ModelKind::Gat, ModelKind::Sage] {
        for gpus in [1usize, 2, 4] {
            for overlap in [OverlapMode::Off, OverlapMode::DoubleBuffer] {
                let mut dg = DynamicGraph::from_dataset(&ds);
                let deltas = small_batch(&dg, test_seed());
                let incremental = {
                    let mut s = session(&ds, kind, gpus, overlap);
                    s.infer_epoch().expect("initial full sweep");
                    let report = s.apply_deltas(&mut dg, &deltas).expect("apply deltas");
                    assert_eq!(report.epoch, 1);
                    assert!(report.active_steps <= report.total_steps);
                    report.logits
                };
                let rebuilt = {
                    let mutated = dg.to_dataset(&ds);
                    let mut s = session(&mutated, kind, gpus, overlap);
                    s.infer_epoch().expect("rebuild sweep").logits
                };
                assert_eq!(
                    incremental,
                    rebuilt,
                    "{} / {gpus} GPUs / {overlap:?}: incremental logits diverged from rebuild",
                    kind.name()
                );
            }
        }
    }
}

/// The comm mode does not perturb the incremental repair: Vanilla, +P2P
/// and +RU all land bitwise on the rebuilt-session logits.
#[test]
fn incremental_logits_match_rebuild_across_comm_modes() {
    let ds = dataset();
    for comm in [CommMode::Vanilla, CommMode::P2p, CommMode::P2pRu] {
        let mut dg = DynamicGraph::from_dataset(&ds);
        let deltas = small_batch(&dg, test_seed() ^ 0x5eed);
        let incremental = {
            let cfg = config(2, OverlapMode::Off, comm);
            let mut s = Session::new(&ds, ModelKind::Gcn, 16, 2, 4, cfg).expect("session");
            s.infer_epoch().expect("initial full sweep");
            s.apply_deltas(&mut dg, &deltas)
                .expect("apply deltas")
                .logits
        };
        let rebuilt = {
            let mutated = dg.to_dataset(&ds);
            let cfg = config(2, OverlapMode::Off, comm);
            let mut s = Session::new(&mutated, ModelKind::Gcn, 16, 2, 4, cfg).expect("session");
            s.infer_epoch().expect("rebuild sweep").logits
        };
        assert_eq!(
            incremental, rebuilt,
            "{comm:?}: incremental logits diverged from rebuild"
        );
    }
}

/// The chunk-granular affected cone covers the exact vertex-level
/// out-edge ball: at the step computing `h^{l+1}`, every vertex whose
/// row a mutation transitively invalidated (dirty seeds plus up to `l`
/// out-hops on the mutated graph) must live in an active batch. The
/// mask may be larger (batch granularity), never smaller — and must be
/// upward closed.
#[test]
fn delta_cone_covers_out_edge_ball_oracle() {
    for seed in [3u64, 17, 42] {
        let mut rng = SeededRng::new(seed);
        let g = with_self_loops(&generators::erdos_renyi(
            160 + rng.index(120),
            4.0,
            &mut rng.fork(1),
        ));
        let n = g.num_vertices();
        let features = Matrix::from_fn(n, 4, |_, c| c as f32);
        let mut dg = DynamicGraph::new(g, features);
        let deltas = toggle_workload(dg.graph(), 4, 1, 3, DeltaMix::Mixed, &mut rng.fork(2))
            .pop()
            .expect("one batch");
        let staged = dg.stage(&deltas).expect("valid batch");
        let dirty = staged.dirty().to_vec();
        let mutated = staged.graph().clone();
        dg.commit(staged);

        for (m, chunks) in [(1usize, 4usize), (2, 4), (4, 2)] {
            let plan = TwoLevelPartition::build(&mutated, m, chunks, seed);
            let mut batch_of = vec![0usize; n];
            for c in plan.all_chunks() {
                for &v in &c.dests {
                    batch_of[v as usize] = c.chunk;
                }
            }
            for layers in [1usize, 2, 3] {
                let mask = ServeMask::from_dirty(&plan, layers, &dirty);
                let ball = out_edge_ball(&mutated, &dirty, layers.saturating_sub(1));
                for (l, row) in ball.iter().enumerate().take(layers) {
                    for v in 0..n {
                        if row[v] {
                            assert!(
                                mask.active(l, batch_of[v]),
                                "seed {seed}, {m}x{chunks}, L={layers}: vertex {v} invalid at \
                                 h^{} but batch {} inactive at layer {l}",
                                l + 1,
                                batch_of[v]
                            );
                        }
                    }
                }
                // Upward closure: a batch active at layer l is active
                // at layer l+1.
                for l in 0..layers.saturating_sub(1) {
                    for j in 0..mask.batches() {
                        assert!(!mask.active(l, j) || mask.active(l + 1, j));
                    }
                }
            }
        }
    }
}

/// The incremental replay schedule certifies clean under the static
/// passes — upward cone closure (pass 10), happens-before + lifetimes +
/// exhaustive interleaving exploration (6–8) and dataflow conservation
/// (9) — and Paranoid validation re-certifies inside `apply_deltas`
/// itself.
#[test]
fn incremental_schedule_certifies_with_paranoid() {
    let ds = dataset();
    let cfg = HongTuConfig::builder()
        .machine(MachineConfig::scaled(2, 512 << 20))
        .comm(CommMode::P2pRu)
        .reorganize(true)
        .overlap(OverlapMode::DoubleBuffer)
        .validation(ValidationLevel::Paranoid)
        .infer()
        .build()
        .expect("valid config");
    let mut session = Session::new(&ds, ModelKind::Gcn, 16, 2, 4, cfg).expect("session");
    session.infer_epoch().expect("initial full sweep");

    let mut dg = DynamicGraph::from_dataset(&ds);
    let deltas = small_batch(&dg, test_seed() ^ 0xcafe);
    let staged = dg.stage(&deltas).expect("valid batch");
    let dirty = staged.dirty().to_vec();

    // Paranoid re-runs schedule + dataflow certification inside the
    // epoch wrapper; a clean return IS the certificate.
    let report = session
        .apply_staged(&mut dg, staged)
        .expect("apply under Paranoid");
    assert_eq!(report.dirty_vertices, dirty.len());

    // Certify the replay that just ran, against the rebuilt plans.
    assert!(session.exhaustive_exploration_feasible());
    let cert = session
        .certify_delta(&dirty, Some(DEFAULT_EXPLORE_BUDGET))
        .expect("schedule synthesis");
    assert!(cert.is_ok(), "{}", cert.render());
}

/// A small delta costs strictly less than the full-recompute baseline
/// on perfectly matched sessions: strictly fewer sim events, strictly
/// less simulated time, bitwise-identical logits.
#[test]
fn small_delta_beats_full_recompute() {
    // Batch-granular pruning needs a graph where one vertex's
    // out-neighborhood does not scatter across every batch, so this
    // test runs on a sparse random dataset with more chunks than the
    // dense Rdt proxy. The smallest possible mutation: rewrite the
    // features of the vertex with the fewest out-edges (usually just
    // its self-loop), so the affected cone stays a small fraction of
    // the sweep.
    let ds = random_dataset(test_seed() ^ 0xbeef, 360);
    let quiet = (0..ds.graph.num_vertices())
        .min_by_key(|&v| ds.graph.out_degree(v as u32))
        .expect("non-empty graph") as u32;
    let deltas = vec![Delta::UpdateFeatures {
        vertex: quiet,
        features: vec![0.25; ds.features.cols()],
    }];
    let mk_session = |overlap| {
        Session::new(
            &ds,
            ModelKind::Gcn,
            16,
            2,
            6,
            config(2, overlap, CommMode::P2pRu),
        )
        .expect("session")
    };
    for overlap in [OverlapMode::Off, OverlapMode::DoubleBuffer] {
        let mut dg_inc = DynamicGraph::from_dataset(&ds);
        let mut dg_full = DynamicGraph::from_dataset(&ds);

        let (inc_logits, inc_events, inc_time) = {
            let mut s = mk_session(overlap);
            s.infer_epoch().expect("initial full sweep");
            s.machine_mut().enable_unbounded_trace();
            let r = s.apply_deltas(&mut dg_inc, &deltas).expect("incremental");
            assert!(
                r.active_steps < r.total_steps,
                "{overlap:?}: delta cone fills the whole sweep — pick a smaller delta"
            );
            (r.logits, s.machine().trace().len(), r.time)
        };
        let (full_logits, full_events, full_time) = {
            let mut s = mk_session(overlap);
            s.infer_epoch().expect("initial full sweep");
            s.machine_mut().enable_unbounded_trace();
            let r = s.apply_deltas_full(&mut dg_full, &deltas).expect("full");
            (r.logits, s.machine().trace().len(), r.time)
        };

        assert_eq!(inc_logits, full_logits, "{overlap:?}: paths diverged");
        assert!(
            inc_events < full_events,
            "{overlap:?}: incremental {inc_events} events !< full {full_events}"
        );
        assert!(
            inc_time < full_time,
            "{overlap:?}: incremental {inc_time}s !< full {full_time}s"
        );
    }
}

/// An ad-hoc random dataset (not from the registry).
fn random_dataset(seed: u64, n: usize) -> Dataset {
    let rng = SeededRng::new(seed);
    let g = generators::erdos_renyi(n, 5.0, &mut rng.fork(1));
    let graph = with_self_loops(&g);
    let mut frng = rng.fork(2);
    let features = Matrix::from_fn(n, 6, |_, _| frng.normal() * 0.5);
    let mut lrng = rng.fork(3);
    let labels: Vec<u32> = (0..n).map(|_| lrng.index(3) as u32).collect();
    let splits = Splits::random(n, 0.4, 0.2, &mut rng.fork(4));
    Dataset {
        key: DatasetKey::Rdt,
        graph,
        features,
        labels,
        splits,
        num_classes: 3,
        seed,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random delta sequences converge identically whichever way they
    /// are applied: batch-by-batch incremental repair, all deltas as a
    /// single batch, and a full session rebuild on the final graph all
    /// produce bitwise-equal logits.
    #[test]
    fn delta_sequences_converge_bitwise(
        seed in 0u64..200,
        n in 140usize..280,
        chunks in 2usize..5,
        batches in 1usize..4,
        edits in 1usize..4,
        mix_sel in 0usize..3,
        overlap_sel in 0usize..2,
    ) {
        let mix = [DeltaMix::Edge, DeltaMix::Feature, DeltaMix::Mixed][mix_sel];
        let overlap = [OverlapMode::Off, OverlapMode::DoubleBuffer][overlap_sel];
        let ds = random_dataset(seed, n);
        let cfg = || HongTuConfig::builder()
            .machine(MachineConfig::scaled(2, 512 << 20))
            .comm(CommMode::P2pRu)
            .reorganize(true)
            .overlap(overlap)
            .infer()
            .build()
            .expect("valid config");
        let workload = toggle_workload(
            &ds.graph,
            ds.features.cols(),
            batches,
            edits,
            mix,
            &mut SeededRng::new(seed ^ 0xd17a),
        );

        // Path A: batch-by-batch incremental repair.
        let mut dg_a = DynamicGraph::from_dataset(&ds);
        let one_by_one = {
            let mut s = Session::new(&ds, ModelKind::Gcn, 8, 2, chunks, cfg()).expect("session");
            s.infer_epoch().expect("initial full sweep");
            let mut logits = None;
            for b in &workload {
                logits = Some(s.apply_deltas(&mut dg_a, b).expect("apply").logits);
            }
            logits.expect("at least one batch")
        };
        prop_assert_eq!(dg_a.epoch(), workload.len() as u64);

        // Path B: every delta as one batch.
        let mut dg_b = DynamicGraph::from_dataset(&ds);
        let combined: Vec<Delta> = workload.iter().flatten().cloned().collect();
        let as_one = {
            let mut s = Session::new(&ds, ModelKind::Gcn, 8, 2, chunks, cfg()).expect("session");
            s.infer_epoch().expect("initial full sweep");
            s.apply_deltas(&mut dg_b, &combined).expect("apply").logits
        };

        // Path C: full session rebuild on the final graph.
        let rebuilt = {
            let mutated = dg_a.to_dataset(&ds);
            let mut s = Session::new(&mutated, ModelKind::Gcn, 8, 2, chunks, cfg())
                .expect("session");
            s.infer_epoch().expect("rebuild sweep").logits
        };

        prop_assert_eq!(&one_by_one, &as_one, "one-by-one vs single batch diverged");
        prop_assert_eq!(&one_by_one, &rebuilt, "incremental vs rebuild diverged");
    }
}
