//! Property-based integration tests over the partition → dedup → reorg
//! pipeline on randomly generated graphs. The static verifier
//! (`hongtu-verify`) is the oracle: every generated or reorganized plan
//! must pass all four passes.

use hongtu::core::{comm_cost, reorganize, reorganize_guarded, CommVolumes, DedupPlan};
use hongtu::graph::generators;
use hongtu::partition::{GpuBufferPlan, TwoLevelPartition};
use hongtu::sim::MachineConfig;
use hongtu::tensor::SeededRng;
use hongtu::verify::verify_all;
use proptest::prelude::*;

fn random_plan(
    seed: u64,
    n_vertices: usize,
    deg: f64,
    m: usize,
    n: usize,
) -> (hongtu::graph::Graph, TwoLevelPartition) {
    let mut rng = SeededRng::new(seed);
    let g = generators::erdos_renyi(n_vertices, deg, &mut rng);
    let plan = TwoLevelPartition::build(&g, m, n, seed);
    (g, plan)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The dedup plan validates and its volumes obey
    /// `V_ori ≥ V_+p2p ≥ V_+ru ≥ 0` for arbitrary graphs and shapes.
    #[test]
    fn dedup_plan_invariants(
        seed in 0u64..1000,
        nv in 60usize..400,
        deg in 2.0f64..8.0,
        m in 1usize..5,
        n in 1usize..5,
    ) {
        let (g, plan) = random_plan(seed, nv, deg, m, n);
        prop_assert!(plan.validate(&g).is_ok());
        let d = DedupPlan::build(&plan);
        prop_assert!(d.validate(&plan).is_ok(), "{:?}", d.validate(&plan));
        // The verifier is the stronger oracle: all four passes, including
        // the buffer slot-interpreter and the volume cross-check.
        let bufs = GpuBufferPlan::build_all(&plan, &d);
        let report = verify_all(&g, &plan, &d, &bufs);
        prop_assert!(report.is_ok(), "{}", report.render());
        let v = CommVolumes::from_plan(&d);
        prop_assert!(v.v_ori >= v.v_p2p);
        prop_assert!(v.v_p2p >= v.v_ru);
        // Every access is attributed exactly once.
        prop_assert_eq!(v.v_ru + v.inter_gpu() + v.intra_gpu(), v.v_ori);
    }

    /// Reorganization (Algorithm 4) preserves plan validity and total
    /// access volume; the guarded variant never raises the Eq.-4 cost.
    #[test]
    fn reorganization_invariants(
        seed in 0u64..1000,
        nv in 80usize..300,
        m in 2usize..5,
        n in 2usize..6,
    ) {
        let (g, plan) = random_plan(seed, nv, 5.0, m, n);
        let cfg = MachineConfig::a100_4x();
        let v_before = CommVolumes::from_plan(&DedupPlan::build(&plan));
        let cost_before = comm_cost(v_before, &cfg, 64);

        let reorg = reorganize(plan.clone());
        prop_assert!(reorg.validate(&g).is_ok());
        let d_after = DedupPlan::build(&reorg);
        let bufs = GpuBufferPlan::build_all(&reorg, &d_after);
        let report = verify_all(&g, &reorg, &d_after, &bufs);
        prop_assert!(report.is_ok(), "reorganized plan: {}", report.render());
        let v_after = CommVolumes::from_plan(&d_after);
        prop_assert_eq!(v_after.v_ori, v_before.v_ori, "total accesses must be preserved");

        let guarded = reorganize_guarded(plan, &cfg);
        let v_guarded = CommVolumes::from_plan(&DedupPlan::build(&guarded));
        prop_assert!(comm_cost(v_guarded, &cfg, 64) <= cost_before * (1.0 + 1e-9));
    }

    /// The chunk grid partitions both vertices and edges exactly.
    #[test]
    fn chunks_tile_the_graph(
        seed in 0u64..1000,
        nv in 60usize..300,
        m in 1usize..4,
        n in 1usize..5,
    ) {
        let (g, plan) = random_plan(seed, nv, 4.0, m, n);
        let dests: usize = plan.all_chunks().map(|c| c.num_dests()).sum();
        let edges: usize = plan.all_chunks().map(|c| c.num_edges()).sum();
        prop_assert_eq!(dests, g.num_vertices());
        prop_assert_eq!(edges, g.num_edges());
    }
}

/// Deterministic end-to-end check that dedup volumes match a brute-force
/// recount on a concrete graph.
#[test]
fn volumes_match_brute_force() {
    let (_g, plan) = random_plan(123, 200, 5.0, 3, 3);
    let d = DedupPlan::build(&plan);

    // Brute force V_ori.
    let v_ori: usize = plan.all_chunks().map(|c| c.num_neighbors()).sum();
    assert_eq!(d.v_ori(), v_ori);

    // Brute force V_+p2p: per batch, the union of neighbor sets.
    let mut v_p2p = 0;
    for j in 0..plan.n {
        let mut union: Vec<u32> = plan.batch(j).flat_map(|c| c.neighbors.clone()).collect();
        union.sort_unstable();
        union.dedup();
        v_p2p += union.len();
    }
    assert_eq!(d.v_p2p(), v_p2p);
}
