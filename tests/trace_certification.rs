//! End-to-end certification of the engine's execution schedule: full
//! `train_epoch` traces across comm modes, memory strategies, models, and
//! GPU counts must certify clean under the happens-before checker — and
//! corrupted versions of those same traces must not.

use hongtu::core::systems::{
    CpuSystem, CpuSystemKind, InMemoryKind, MiniBatchSystem, MultiGpuInMemory, NeutronStyle,
    RocStyle, SingleGpuFullGraph, Workload,
};
use hongtu::core::{CommMode, HongTuConfig, HongTuEngine, MemoryStrategy};
use hongtu::datasets::dataset::{with_self_loops, Dataset, DatasetKey, Splits};
use hongtu::graph::generators;
use hongtu::nn::ModelKind;
use hongtu::sim::{CpuClusterConfig, Device, EventKind, Intent, MachineConfig, ResourceId, Trace};
use hongtu::tensor::{Matrix, SeededRng};
use hongtu::verify::{verify_determinism, verify_trace, DiagCode};
use proptest::prelude::*;

/// An ad-hoc random dataset (not from the registry).
fn random_dataset(seed: u64, n: usize, deg: f64, classes: usize) -> Dataset {
    let mut rng = SeededRng::new(seed);
    let g = generators::erdos_renyi(n, deg, &mut rng.fork(1));
    let graph = with_self_loops(&g);
    let feat_dim = 4 + rng.index(6);
    let mut frng = rng.fork(2);
    let features = Matrix::from_fn(n, feat_dim, |_, _| frng.normal() * 0.5);
    let mut lrng = rng.fork(3);
    let labels: Vec<u32> = (0..n).map(|_| lrng.index(classes) as u32).collect();
    let splits = Splits::random(n, 0.4, 0.2, &mut rng.fork(4));
    Dataset {
        key: DatasetKey::Rdt,
        graph,
        features,
        labels,
        splits,
        num_classes: classes,
        seed,
    }
}

/// Trains one epoch under an unbounded trace and returns the recording.
fn traced_epoch(
    ds: &Dataset,
    kind: ModelKind,
    chunks: usize,
    gpus: usize,
    comm: CommMode,
    memory: MemoryStrategy,
) -> Trace {
    let machine = MachineConfig::scaled(gpus, 512 << 20);
    let mut config = HongTuConfig::full(machine);
    config.comm = comm;
    config.memory = memory;
    config.reorganize = comm != CommMode::Vanilla;
    let mut engine = HongTuEngine::new(ds, kind, 8, 2, chunks, config).expect("engine");
    engine.machine_mut().enable_unbounded_trace();
    engine.train_epoch().expect("epoch");
    engine.machine().trace().clone()
}

fn rebuilt(events: Vec<hongtu::sim::Event>) -> Trace {
    let mut t = Trace::unbounded();
    for e in events {
        t.record(e);
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any full `train_epoch` schedule — random graph, model, chunking,
    /// GPU count, comm mode, and checkpoint strategy — certifies clean.
    #[test]
    fn train_epoch_schedule_certifies_clean(
        seed in 0u64..500,
        n in 120usize..320,
        deg in 3.0f64..7.0,
        chunks in 1usize..5,
        gpus in 1usize..5,
        kind_sel in 0usize..3,
        comm_sel in 0usize..3,
        mem_sel in 0usize..2,
    ) {
        let kind = [ModelKind::Gcn, ModelKind::Gat, ModelKind::Sage][kind_sel];
        let comm = [CommMode::Vanilla, CommMode::P2p, CommMode::P2pRu][comm_sel];
        let memory = [MemoryStrategy::Recompute, MemoryStrategy::Hybrid][mem_sel];
        let ds = random_dataset(seed, n, deg, 3);
        let trace = traced_epoch(&ds, kind, chunks, gpus, comm, memory);
        let report = verify_trace(&trace);
        prop_assert!(
            report.is_ok(),
            "{} {:?}/{:?} {gpus}x{chunks}: {}",
            kind.name(),
            comm,
            memory,
            report.render()
        );
    }
}

/// Two identically-seeded engines must emit equivalent schedules (modulo
/// commutable cross-GPU reorderings).
#[test]
fn identically_seeded_engines_are_deterministic() {
    let ds = random_dataset(13, 220, 5.0, 3);
    let a = traced_epoch(
        &ds,
        ModelKind::Gcn,
        3,
        3,
        CommMode::P2pRu,
        MemoryStrategy::Hybrid,
    );
    let b = traced_epoch(
        &ds,
        ModelKind::Gcn,
        3,
        3,
        CommMode::P2pRu,
        MemoryStrategy::Hybrid,
    );
    let r = verify_determinism(&a, &b);
    assert!(r.is_ok(), "{}", r.render());
}

// ------------------------------ corruptions of a real engine trace ------

/// Stripping every barrier from a real engine trace must trip the
/// checker: chunk batches are no longer separated (S501) and previously
/// ordered cross-device accesses now race.
#[test]
fn engine_trace_without_barriers_is_rejected() {
    let ds = random_dataset(21, 220, 5.0, 3);
    let trace = traced_epoch(
        &ds,
        ModelKind::Gcn,
        3,
        2,
        CommMode::P2pRu,
        MemoryStrategy::Hybrid,
    );
    assert!(verify_trace(&trace).is_ok());
    let stripped = rebuilt(
        trace
            .events()
            .filter(|e| !matches!(e.kind, EventKind::Barrier(_)))
            .cloned()
            .collect(),
    );
    let r = verify_trace(&stripped);
    assert!(r.has(DiagCode::BatchNotBarriered), "{}", r.render());
}

/// Duplicating a buffer load onto another GPU inside the same barrier
/// segment is a write/write race on the merged buffer.
#[test]
fn engine_trace_with_duplicated_load_is_rejected() {
    let ds = random_dataset(34, 220, 5.0, 3);
    let trace = traced_epoch(
        &ds,
        ModelKind::Gcn,
        2,
        2,
        CommMode::P2p,
        MemoryStrategy::Recompute,
    );
    let mut events: Vec<_> = trace.events().cloned().collect();
    let pos = events
        .iter()
        .position(|e| {
            e.accesses.iter().any(|a| {
                a.intent == Intent::Write && matches!(a.resource, ResourceId::DevRep { .. })
            })
        })
        .expect("an annotated buffer load");
    let mut dup = events[pos].clone();
    dup.device = match dup.device {
        Device::Gpu(g) => Device::Gpu((g + 1) % 2),
        Device::Host => Device::Gpu(0),
    };
    events.insert(pos + 1, dup);
    let r = verify_trace(&rebuilt(events));
    assert!(r.has(DiagCode::RaceWriteWrite), "{}", r.render());
}

/// Reordering a buffer load to the end of the epoch leaves its consumers
/// reading a buffer nothing populated.
#[test]
fn engine_trace_with_reordered_load_is_rejected() {
    let ds = random_dataset(34, 220, 5.0, 3);
    let trace = traced_epoch(
        &ds,
        ModelKind::Gcn,
        2,
        2,
        CommMode::Vanilla,
        MemoryStrategy::Recompute,
    );
    let mut events: Vec<_> = trace.events().cloned().collect();
    let pos = events
        .iter()
        .position(|e| {
            e.accesses.iter().any(|a| {
                a.intent == Intent::Write && matches!(a.resource, ResourceId::DevRep { .. })
            })
        })
        .expect("an annotated buffer load");
    let load = events.remove(pos);
    events.push(load);
    let r = verify_trace(&rebuilt(events));
    assert!(
        r.has(DiagCode::ReadUnpopulated) || r.has(DiagCode::StaleGeneration),
        "{}",
        r.render()
    );
}

/// A capacity-bounded recording that evicted events is refused outright.
#[test]
fn pruned_engine_trace_is_refused() {
    let ds = random_dataset(44, 220, 5.0, 3);
    let machine = MachineConfig::scaled(2, 512 << 20);
    let mut engine =
        HongTuEngine::new(&ds, ModelKind::Gcn, 8, 2, 3, HongTuConfig::full(machine)).unwrap();
    let user = engine.machine_mut().replace_trace(Trace::with_capacity(16));
    drop(user);
    engine.train_epoch().unwrap();
    assert!(engine.machine().trace().dropped() > 0);
    let r = verify_trace(engine.machine().trace());
    assert!(r.has(DiagCode::TraceIncomplete), "{}", r.render());
}

// -------------------------- comparator backends' schedules --------------

/// Every comparator backend's epoch schedule certifies clean too: the
/// checker is not special-cased to the HongTu engine's event shapes.
#[test]
fn all_comparator_schedules_certify_clean() {
    let ds = random_dataset(55, 300, 5.0, 3);
    let w = Workload::new(&ds, ModelKind::Gcn, 16, 2);
    let machine = MachineConfig::scaled(4, 2 << 30);

    let traces = vec![
        (
            "single-gpu",
            SingleGpuFullGraph::new(machine.clone())
                .epoch_schedule(&w)
                .expect("single-gpu schedule"),
        ),
        (
            "mini-batch",
            MiniBatchSystem::new(machine.clone(), 1024, 7)
                .epoch_schedule(&w)
                .expect("mini-batch schedule"),
        ),
        (
            "multi-gpu-im",
            MultiGpuInMemory::new(InMemoryKind::HongTuIm, machine.clone(), &ds, 7)
                .epoch_schedule(&w)
                .expect("in-memory schedule"),
        ),
        (
            "cpu-cluster",
            CpuSystem::new(
                CpuSystemKind::Cluster,
                CpuClusterConfig::scaled(4, 8 << 30),
                &ds,
            )
            .epoch_schedule(&w)
            .expect("cpu schedule"),
        ),
        (
            "partial-neutron",
            NeutronStyle::new(machine.clone())
                .epoch_schedule(&w)
                .expect("neutron schedule"),
        ),
        (
            "partial-roc",
            RocStyle::new(machine)
                .epoch_schedule(&w)
                .expect("roc schedule"),
        ),
    ];
    for (name, trace) in traces {
        let r = verify_trace(&trace);
        assert!(r.is_ok(), "{name}: {}", r.render());
    }
}
