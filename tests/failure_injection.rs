//! Failure-injection tests: the system must fail loudly and informatively
//! — never silently — when capacities, shapes, or configurations are
//! wrong.

use hongtu::core::systems::{InMemoryKind, MultiGpuInMemory, Workload};
use hongtu::core::{HongTuConfig, HongTuEngine, OverlapMode};
use hongtu::datasets::{load, DatasetKey};
use hongtu::nn::ModelKind;
use hongtu::sim::{MachineConfig, SimError};
use hongtu::tensor::SeededRng;

fn rdt() -> hongtu::datasets::Dataset {
    load(DatasetKey::Rdt, &mut SeededRng::new(5))
}

/// Construction-time OOM: the engine refuses to build when even the
/// static allocations (host buffers, replicated parameters) do not fit.
#[test]
fn construction_oom_reports_device_and_label() {
    let ds = rdt();
    // GPUs too small even for the model parameters + one chunk.
    let cfg = HongTuConfig::full(MachineConfig::scaled(4, 4 << 10));
    let err = HongTuEngine::new(&ds, ModelKind::Gcn, 64, 4, 2, cfg)
        .err()
        .or_else(|| {
            // If construction somehow fits, the first epoch must fail.
            let cfg = HongTuConfig::full(MachineConfig::scaled(4, 4 << 10));
            HongTuEngine::new(&ds, ModelKind::Gcn, 64, 4, 2, cfg)
                .ok()
                .and_then(|mut e| e.train_epoch().err())
        })
        .expect("a 4 KB GPU cannot run this workload");
    match err {
        SimError::OutOfMemory {
            device,
            label,
            requested,
            capacity,
            ..
        } => {
            assert!(!device.is_empty() && !label.is_empty());
            assert!(requested > capacity || requested > 0);
        }
        other => panic!("expected OutOfMemory, got {other:?}"),
    }
}

/// Mid-epoch OOM: with memory that holds the static data but not the
/// per-batch buffers, the failure surfaces as an error from `train_epoch`,
/// not a panic.
#[test]
fn epoch_oom_is_an_error_not_a_panic() {
    let ds = rdt();
    // Binary-search a capacity that admits construction but not execution.
    for mb in [1usize, 2, 3, 4] {
        let cfg = HongTuConfig::full(MachineConfig::scaled(4, mb << 18));
        if let Ok(mut e) = HongTuEngine::new(&ds, ModelKind::Gat, 32, 2, 1, cfg) {
            match e.train_epoch() {
                Err(SimError::OutOfMemory { .. }) => return, // what we wanted
                Ok(_) => continue,                           // fits — try smaller? next mb bigger
                Err(other) => panic!("unexpected error {other:?}"),
            }
        }
    }
    // All sizes either failed at construction or ran — also acceptable, but
    // at least one configuration should demonstrate the mid-epoch path.
    // (GAT with 1 chunk has large per-batch intermediates; the smallest
    // size above must have hit it.)
    panic!("no configuration exercised the mid-epoch OOM path");
}

/// Double-buffered staging that does not fit fails *at construction* —
/// naming the staging-buffer slot and the GPU — on a capacity where the
/// additive executor trains fine. The overlap executor must never start
/// an epoch it cannot finish.
#[test]
fn staging_double_buffer_oom_fails_at_construction() {
    let ds = rdt();
    // Scan capacities upward: the window where the single-buffered
    // schedule fits but the second staging copy does not.
    for kb in [256usize, 320, 384, 448, 512, 640, 768, 1024, 1536, 2048] {
        let off_cfg = HongTuConfig::full(MachineConfig::scaled(4, kb << 10));
        let Ok(mut off) = HongTuEngine::new(&ds, ModelKind::Gcn, 32, 2, 4, off_cfg) else {
            continue;
        };
        if off.train_epoch().is_err() {
            continue;
        }
        let mut db_cfg = HongTuConfig::full(MachineConfig::scaled(4, kb << 10));
        db_cfg.overlap = OverlapMode::DoubleBuffer;
        match HongTuEngine::new(&ds, ModelKind::Gcn, 32, 2, 4, db_cfg) {
            Err(SimError::OutOfMemory { device, label, .. }) => {
                assert!(device.starts_with("GPU"), "device: {device:?}");
                assert!(label.contains("staging buffer"), "label: {label:?}");
                return;
            }
            Err(other) => panic!("unexpected error {other:?}"),
            // Both fit at this capacity — the window is below it.
            Ok(_) => break,
        }
    }
    panic!("no capacity separated the additive executor from double buffering");
}

/// Comparator OOM errors carry the device context.
#[test]
fn comparator_oom_is_descriptive() {
    let ds = load(DatasetKey::Fds, &mut SeededRng::new(5));
    let im = MultiGpuInMemory::new(
        InMemoryKind::Sancus,
        MachineConfig::scaled(4, 8 << 20),
        &ds,
        1,
    );
    let err = im
        .epoch_time(&Workload::new(&ds, ModelKind::Gcn, 32, 2))
        .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("out of memory"), "{msg}");
    assert!(msg.contains("in-memory training data"), "{msg}");
}

/// Invalid machine configurations are rejected before any training runs.
#[test]
#[should_panic(expected = "invalid MachineConfig")]
fn invalid_machine_config_panics_at_construction() {
    let mut cfg = MachineConfig::scaled(4, 1 << 20);
    cfg.pcie_bw = -1.0;
    let _ = hongtu::sim::Machine::new(cfg);
}

/// More chunks than a partition has vertices is a programming error with a
/// clear message.
#[test]
#[should_panic(expected = "fewer than")]
fn oversized_chunk_count_panics_with_context() {
    let ds = rdt();
    let cfg = HongTuConfig::full(MachineConfig::scaled(4, 256 << 20));
    // RDT has 3000 vertices / 4 partitions = 750 per partition.
    let _ = HongTuEngine::new(&ds, ModelKind::Gcn, 8, 2, 1000, cfg);
}

/// Corrupt checkpoint files fail to load with a format error, and a
/// truncated graph file fails with an I/O error — neither panics.
#[test]
fn corrupt_files_are_graceful() {
    let model_err = hongtu::nn::load_model(&b"garbage-bytes"[..]).unwrap_err();
    assert!(model_err.to_string().contains("model"), "{model_err}");
    let graph_err = hongtu::graph::binfmt::read_graph(&b"also-garbage"[..]).unwrap_err();
    assert!(graph_err.to_string().contains("graph"), "{graph_err}");
}
