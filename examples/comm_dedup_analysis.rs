//! Communication-deduplication analysis on a custom graph.
//!
//! Shows the planner layer of HongTu as a standalone library: build your
//! own graph, 2-level-partition it, inspect the three communication
//! volumes of §5.3, evaluate the Equation-4 cost model, and measure what
//! Algorithm 4 reorganization buys.
//!
//! Run with: `cargo run --example comm_dedup_analysis`

use hongtu::core::{comm_cost, reorganize, CommVolumes, DedupPlan};
use hongtu::graph::generators::{rmat, RmatParams};
use hongtu::partition::TwoLevelPartition;
use hongtu::sim::MachineConfig;
use hongtu::tensor::SeededRng;

fn main() {
    // A hub-heavy social graph: lots of duplicated neighbor accesses.
    let mut rng = SeededRng::new(3);
    let g = rmat(14, 200_000, RmatParams::social(), &mut rng);
    println!(
        "graph: {} vertices, {} edges (R-MAT social)",
        g.num_vertices(),
        g.num_edges()
    );

    let cfg = MachineConfig::a100_4x();
    let bytes_per_row = 128 * 4; // a 128-dim f32 representation

    let report = |name: &str, plan: &TwoLevelPartition| {
        let v = CommVolumes::from_plan(&DedupPlan::build(plan));
        let cost = comm_cost(v, &cfg, bytes_per_row);
        println!(
            "{name:<12} V_ori {:>8}  inter-GPU dup {:>7} ({:>4.1}%)  intra-GPU dup {:>7} ({:>4.1}%)  \
             H2D cut {:>3.0}%  Eq.4 cost {:.3} ms",
            v.v_ori,
            v.inter_gpu(),
            100.0 * v.inter_gpu() as f64 / v.v_ori as f64,
            v.intra_gpu(),
            100.0 * v.intra_gpu() as f64 / v.v_ori as f64,
            100.0 * v.h2d_reduction(),
            cost * 1e3,
        );
        cost
    };

    // 4 GPUs x 16 chunks.
    let plan = TwoLevelPartition::build(&g, 4, 16, 99);
    let before = report("initial", &plan);

    // Algorithm 4: 2-phase greedy reorganization.
    let reorg = reorganize(plan);
    let after = report("reorganized", &reorg);

    println!(
        "\nreorganization changed the modeled communication cost by {:+.1}%",
        100.0 * (after - before) / before
    );

    // Sensitivity: the same graph at several chunk counts.
    println!("\nchunk-count sensitivity (4 GPUs):");
    for n in [4usize, 8, 16, 32, 64] {
        let plan = TwoLevelPartition::build(&g, 4, n, 99);
        let v = CommVolumes::from_plan(&DedupPlan::build(&plan));
        println!(
            "  n = {n:>3}: V_ori/|V| = {:.2}, H2D reduction {:.0}%",
            v.v_ori as f64 / g.num_vertices() as f64,
            100.0 * v.h2d_reduction()
        );
    }
    println!("\nmore chunks -> more neighbor replication (higher V_ori), and also");
    println!("more adjacent-batch overlap for intra-GPU reuse to recover.");
}
