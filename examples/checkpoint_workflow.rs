//! Checkpoint workflow: train with HongTu, save the model, reload it in a
//! fresh process-like context, and verify identical inference.
//!
//! Run with: `cargo run --example checkpoint_workflow`

use hongtu::core::{HongTuConfig, HongTuEngine};
use hongtu::datasets::{load, DatasetKey};
use hongtu::nn::model::whole_graph_chunk;
use hongtu::nn::{load_model_file, loss::masked_accuracy, save_model_file, ModelKind};
use hongtu::sim::MachineConfig;
use hongtu::tensor::SeededRng;

fn main() {
    let dataset = load(DatasetKey::Opt, &mut SeededRng::new(42));
    let machine = MachineConfig::scaled(4, 256 << 20);
    let mut engine = HongTuEngine::new(
        &dataset,
        ModelKind::Sage,
        32,
        2,
        4,
        HongTuConfig::full(machine),
    )
    .expect("engine");

    println!("training GraphSAGE on the ogbn-products proxy ...");
    for epoch in 1..=100 {
        let r = engine.train_epoch().expect("epoch");
        if epoch % 25 == 0 {
            println!("epoch {epoch:>3}: loss {:.4}", r.loss.loss);
        }
    }
    let val = engine.accuracy(&dataset.splits.val);
    println!("trained validation accuracy: {val:.3}");

    // Save and reload.
    let path = std::env::temp_dir().join("hongtu_checkpoint_example.htgm");
    save_model_file(engine.model(), &path).expect("save");
    println!("saved model to {}", path.display());
    let restored = load_model_file(&path).expect("load");
    println!(
        "restored: {} with dims {:?} ({} parameters)",
        restored.kind.name(),
        restored.dims,
        restored.param_count()
    );

    // Full-neighbor inference with the restored model must match.
    let chunk = whole_graph_chunk(&dataset.graph);
    let logits = restored
        .forward_reference(&chunk, &dataset.features)
        .pop()
        .unwrap();
    let val_restored = masked_accuracy(&logits, &dataset.labels, &dataset.splits.val);
    println!("restored validation accuracy: {val_restored:.3}");
    assert!(
        (val - val_restored).abs() < 1e-6,
        "restored model must match exactly"
    );
    println!("round trip verified: identical inference.");
    std::fs::remove_file(&path).ok();
}
