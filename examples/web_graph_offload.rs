//! Out-of-GPU-memory training on a web-scale graph.
//!
//! This is the paper's motivating scenario: the graph's training data
//! exceeds aggregate GPU memory, so every in-memory system fails while
//! HongTu streams chunks through the GPUs from CPU memory.
//!
//! Run with: `cargo run --example web_graph_offload`

use hongtu::core::systems::{InMemoryKind, MultiGpuInMemory, SingleGpuFullGraph, Workload};
use hongtu::core::{HongTuConfig, HongTuEngine};
use hongtu::datasets::{load, DatasetKey};
use hongtu::nn::ModelKind;
use hongtu::sim::MachineConfig;
use hongtu::tensor::SeededRng;

fn main() {
    let mut rng = SeededRng::new(7);
    let dataset = load(DatasetKey::It, &mut rng);
    println!(
        "it-2004 proxy: {} vertices, {} edges (web crawl structure)",
        dataset.num_vertices(),
        dataset.num_edges()
    );

    // A machine whose GPUs cannot hold the training data.
    let machine = MachineConfig::scaled(4, 34 << 20);
    let workload = Workload::new(&dataset, ModelKind::Gcn, 32, 3);

    // In-memory systems: both fail.
    let single = SingleGpuFullGraph::new(MachineConfig::scaled(1, 34 << 20));
    match single.epoch_time(&workload) {
        Err(e) => println!("single-GPU full-graph: {e}"),
        Ok(t) => println!("single-GPU full-graph: {t:.4}s (unexpected!)"),
    }
    let im = MultiGpuInMemory::new(InMemoryKind::HongTuIm, machine.clone(), &dataset, 1);
    match im.epoch_time(&workload) {
        Err(e) => println!("4-GPU in-memory:       {e}"),
        Ok(t) => println!("4-GPU in-memory:       {t:.4}s (unexpected!)"),
    }

    // HongTu: offload vertex data to CPU memory, stream chunks.
    let mut engine = HongTuEngine::new(
        &dataset,
        ModelKind::Gcn,
        32,
        3,
        8, // chunks per partition (paper uses 8 for it-2004 GCN)
        HongTuConfig::full(machine),
    )
    .expect("HongTu fits where in-memory systems do not");

    let pre = engine.preprocessing();
    println!(
        "\nHongTu plan: 4 partitions x 8 chunks, V_ori {:.2}|V|, H2D cut {:.0}%",
        pre.volumes.v_ori as f64 / dataset.num_vertices() as f64,
        100.0 * pre.volumes.h2d_reduction()
    );

    for epoch in 1..=5 {
        let r = engine.train_epoch().expect("epoch");
        println!(
            "epoch {epoch}: loss {:.4}  sim-time {:.2} ms  peak GPU {:.1} MB",
            r.loss.loss,
            r.time * 1e3,
            engine.machine().max_gpu_peak() as f64 / (1 << 20) as f64,
        );
    }
    println!(
        "\nHongTu trained a graph whose resident footprint ({:.0} MB/GPU in-memory)\n\
         exceeds the {:.0} MB GPU budget, peaking at only {:.1} MB per GPU.",
        im.max_gpu_bytes(&workload) as f64 / (1 << 20) as f64,
        engine.machine().config().gpu_memory as f64 / (1 << 20) as f64,
        engine.machine().max_gpu_peak() as f64 / (1 << 20) as f64,
    );
}
