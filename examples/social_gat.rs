//! Graph attention training on a social-network graph.
//!
//! GAT's AGGREGATE produces O(|E|) intermediates (attention scores and
//! weights), so the hybrid caching strategy does not apply — HongTu falls
//! back to pure recomputation for it (§4.2). This example contrasts the
//! time breakdown of GAT (compute-heavy) against GCN
//! (communication-heavy) on the friendster proxy.
//!
//! Run with: `cargo run --example social_gat`

use hongtu::core::{HongTuConfig, HongTuEngine, MemoryStrategy};
use hongtu::datasets::{load, DatasetKey};
use hongtu::nn::ModelKind;
use hongtu::sim::MachineConfig;
use hongtu::tensor::SeededRng;

fn run(kind: ModelKind, chunks: usize) {
    let mut rng = SeededRng::new(11);
    let dataset = load(DatasetKey::Fds, &mut rng);
    let machine = MachineConfig::scaled(4, 34 << 20);
    let mut cfg = HongTuConfig::full(machine);
    // Hybrid is requested for both; GAT layers decline aggregate caching
    // and the engine recomputes instead.
    cfg.memory = MemoryStrategy::Hybrid;
    let mut engine = HongTuEngine::new(&dataset, kind, 32, 2, chunks, cfg).expect("engine");
    let r = engine.train_epoch().expect("epoch");
    let b = r.buckets;
    let total = b.total_time();
    println!(
        "{:<4} epoch {:>8.2} ms | GPU {:>4.0}%  H2D {:>4.0}%  D2D {:>4.0}%  CPU {:>4.0}% | loss {:.4}",
        kind.name(),
        r.time * 1e3,
        100.0 * (b.gpu + b.reuse) / total,
        100.0 * b.h2d / total,
        100.0 * b.d2d / total,
        100.0 * b.cpu / total,
        r.loss.loss,
    );
}

fn main() {
    println!("friendster proxy, 2 layers, 4 GPUs — component share of epoch time:\n");
    // Paper §7.1: friendster uses 32 chunks for GCN, 64 for GAT (larger
    // intermediate footprint → smaller chunks).
    run(ModelKind::Gcn, 32);
    run(ModelKind::Gat, 64);
    println!();
    println!("GCN is dominated by host-GPU communication; GAT shifts a large share");
    println!("to GPU compute (the paper measures GAT GPU time at ~4.5x GCN's).");
}
