//! Quickstart: train a 2-layer GCN with HongTu on a synthetic community
//! graph and watch full-graph training converge while every byte of data
//! movement is accounted against the simulated 4-GPU platform.
//!
//! Run with: `cargo run --example quickstart`

use hongtu::core::{HongTuConfig, HongTuEngine};
use hongtu::datasets::{load, DatasetKey};
use hongtu::nn::ModelKind;
use hongtu::sim::MachineConfig;
use hongtu::tensor::SeededRng;

fn main() {
    // 1. Load a dataset. `Rdt` is the reddit-like proxy: a dense labelled
    //    community graph with train/val/test splits.
    let mut rng = SeededRng::new(42);
    let dataset = load(DatasetKey::Rdt, &mut rng);
    println!(
        "dataset: {} — {} vertices, {} edges, {} features, {} classes",
        dataset.key.real_name(),
        dataset.num_vertices(),
        dataset.num_edges(),
        dataset.feat_dim(),
        dataset.num_classes,
    );

    // 2. Pick a platform. `scaled` keeps the A100 testbed's bandwidth
    //    ratios but shrinks capacities to match the proxy datasets.
    let machine = MachineConfig::scaled(4, 256 << 20);

    // 3. Build the engine: 2-layer GCN, hidden dim 32, 4 chunks per
    //    partition, full HongTu (dedup communication + hybrid caching +
    //    reorganization).
    let mut engine = HongTuEngine::new(
        &dataset,
        ModelKind::Gcn,
        32, // hidden dimension
        2,  // layers
        4,  // chunks per partition
        HongTuConfig::full(machine),
    )
    .expect("engine construction");

    println!(
        "plan: {} partitions x {} chunks; V_ori = {} rows, H2D reduction {:.0}%",
        engine.plans().partition.m,
        engine.plans().partition.n,
        engine.preprocessing().volumes.v_ori,
        100.0 * engine.preprocessing().volumes.h2d_reduction(),
    );

    // 4. Train. Numerics are real; `report.time` is the simulated epoch
    //    time on the modeled hardware.
    for epoch in 1..=30 {
        let report = engine.train_epoch().expect("epoch");
        if epoch % 5 == 0 {
            println!(
                "epoch {epoch:>3}: loss {:.4}  train-acc {:.3}  sim-time {:.3} ms \
                 (H2D {:.0} KB, D2D {:.0} KB, reused {:.0} KB)",
                report.loss.loss,
                report.loss.accuracy,
                report.time * 1e3,
                report.buckets.bytes_h2d as f64 / 1024.0,
                report.buckets.bytes_d2d as f64 / 1024.0,
                report.buckets.bytes_reuse as f64 / 1024.0,
            );
        }
    }

    // 5. Evaluate on the held-out splits.
    println!(
        "final accuracy: val {:.3}, test {:.3}",
        engine.accuracy(&dataset.splits.val),
        engine.accuracy(&dataset.splits.test),
    );
    println!(
        "peak GPU memory: {:.1} MB of {:.0} MB",
        engine.machine().max_gpu_peak() as f64 / (1 << 20) as f64,
        engine.machine().config().gpu_memory as f64 / (1 << 20) as f64,
    );
}
